"""Wire format and task contract of the distributed sweep executor.

Every backend -- in-process, multiprocessing pool, socket fleet --
executes the same unit of work: a :class:`TaskSpec` names a registered
*task runner* (the grid-wide context: search knobs, the trace to
replay, the memory override) and each :class:`SweepJob` carries one
cell's payload (the schema/cluster or schedule/replicas under test).
A runner factory deserializes the context **once** and returns a
closure invoked per cell, so a worker that executes a thousand cells
parses the shared context a single time.

Runner outcomes are plain JSON-able dicts::

    {"result": <json-able payload or None>, "error": <str or None>}

which is what makes the backends interchangeable: the same runner
produces the same outcome dict no matter which transport carried the
cell, so backend parity is a structural guarantee, not a hope.

The sockets backend frames messages as JSON lines (one object per
``\\n``-terminated line), the same idiom as :mod:`repro.serve`'s
:class:`~repro.serve.LiveServer`. Coordinator-bound ops are ``hello``
/ ``next`` / ``result``; worker-bound ops are ``task`` / ``cell`` /
``done``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.errors import ConfigError, DistribError

__all__ = [
    "TaskSpec",
    "SweepJob",
    "TASK_RUNNERS",
    "register_task_runner",
    "resolve_task_runner",
    "encode_line",
    "decode_line",
    "ok_outcome",
    "error_outcome",
]

#: One cell's execution result. ``result`` holds the runner's JSON-able
#: payload on success; ``error`` holds a one-line failure description
#: (infeasible cell) -- exactly one of the two is non-None.
Outcome = Dict[str, Any]

#: A runner maps one cell payload to an outcome dict.
Runner = Callable[[Dict[str, Any]], Outcome]

#: A runner factory binds the task-wide context once per worker.
RunnerFactory = Callable[[Dict[str, Any]], Runner]


@dataclass(frozen=True)
class TaskSpec:
    """What every worker of one sweep executes.

    Attributes:
        kind: Registry name of the task runner (``"search"``,
            ``"whatif"``).
        context: Task-wide JSON-able context, deserialized once per
            worker by the runner factory (search knobs, trace
            envelope, memory override).
    """

    kind: str
    context: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepJob:
    """One grid cell: a stable index plus the cell's payload.

    Attributes:
        index: Position in the caller's grid; outcomes are re-keyed by
            it, so out-of-order completion (work stealing, duplicate
            dispatch) cannot scramble the result table.
        payload: The cell's JSON-able inputs.
    """

    index: int
    payload: Dict[str, Any]


def ok_outcome(result: Any) -> Outcome:
    """A successful cell outcome."""
    return {"result": result, "error": None}


def error_outcome(error: BaseException) -> Outcome:
    """A failed cell outcome, formatted as the sweep table's error
    string (``TypeName: message`` -- the shape the serial path has
    always recorded)."""
    return {"result": None, "error": f"{type(error).__name__}: {error}"}


#: Named task runners. Values are factories binding a context dict to
#: a per-cell runner -- same contract as the policy registries.
TASK_RUNNERS: Dict[str, RunnerFactory] = {}


def register_task_runner(kind: str):
    """Decorator registering a runner factory under ``kind``.

    Raises:
        ConfigError: on a duplicate kind, so a copy-pasted runner
            fails at import time instead of shadowing silently.
    """
    def decorate(factory: RunnerFactory) -> RunnerFactory:
        if kind in TASK_RUNNERS:
            raise ConfigError(f"duplicate task runner kind {kind!r}")
        TASK_RUNNERS[kind] = factory
        return factory
    return decorate


def resolve_task_runner(kind: str) -> RunnerFactory:
    """The registered factory for ``kind``.

    Raises:
        ConfigError: on an unknown kind (lists the known ones).
    """
    try:
        return TASK_RUNNERS[kind]
    except KeyError:
        known = ", ".join(sorted(TASK_RUNNERS))
        raise ConfigError(
            f"unknown task kind {kind!r}; known: {known}") from None


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One protocol message as a compact JSON line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") \
        + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line.

    Raises:
        DistribError: on malformed JSON or a non-object payload (a
            protocol violation, not a cell failure).
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise DistribError(f"malformed protocol line: {error}") from error
    if not isinstance(payload, dict):
        raise DistribError(
            f"protocol messages must be objects, got "
            f"{type(payload).__name__}")
    return payload
