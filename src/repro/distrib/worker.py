"""Sweep worker: the synchronous client side of the sockets backend.

Run one per core per machine, pointed at a coordinator::

    python -m repro.distrib.worker --host 10.0.0.5 --port 8717

The worker connects, sends ``hello``, receives the task context once
(building its runner a single time), then pulls cells in a tight
``next`` -> ``cell`` -> ``result`` loop until the coordinator answers
``done``. It holds no grid state: killing a worker mid-cell loses
nothing (the coordinator requeues), and adding one mid-sweep just
drains the deque faster.

This module is deliberately synchronous -- a worker has exactly one
connection and exists to burn CPU on cells, so blocking reads are the
right shape here. The *coordinator* side is where blocking calls are
banned (see the ``no-blocking-io-in-coordinator`` simlint rule).

``--die-after N`` is a chaos knob for the fault-tolerance tests and
the CI smoke: the worker completes N cells, accepts one more, then
drops the connection without answering it -- a deterministic
mid-sweep crash.
"""

from __future__ import annotations

import argparse
import socket
from typing import Any, Dict, List, Optional

from repro.errors import DistribError
# Importing cells registers the task runners in this process.
from repro.distrib import cells as _cells  # noqa: F401
from repro.distrib.protocol import (
    decode_line,
    encode_line,
    resolve_task_runner,
)

__all__ = ["run_worker", "main"]


def _send(stream, payload: Dict[str, Any]) -> None:
    stream.write(encode_line(payload))
    stream.flush()


def _recv(stream) -> Optional[Dict[str, Any]]:
    line = stream.readline()
    if not line:
        return None
    return decode_line(line)


def run_worker(host: str, port: int, worker_id: str = "worker",
               die_after: Optional[int] = None) -> int:
    """Serve one coordinator until the grid is done.

    Args:
        host / port: The coordinator's address.
        worker_id: Name reported in ``hello`` (keys the coordinator's
            per-worker stats).
        die_after: Chaos knob -- complete this many cells, accept one
            more, then drop the connection without answering.

    Returns:
        How many cells this worker resolved.

    Raises:
        DistribError: when the coordinator violates the protocol
            before any work is exchanged.
    """
    completed = 0
    with socket.create_connection((host, port)) as conn:
        with conn.makefile("rwb") as stream:
            _send(stream, {"op": "hello", "worker": worker_id})
            task = _recv(stream)
            if task is None or task.get("op") != "task":
                raise DistribError(
                    f"coordinator answered hello with {task!r}")
            runner = resolve_task_runner(task["kind"])(
                task.get("context") or {})
            while True:
                try:
                    _send(stream, {"op": "next"})
                    message = _recv(stream)
                except (OSError, ValueError):
                    # Coordinator gone (a straggler's duplicate lost
                    # the race and the sweep already finished).
                    break
                if message is None or message.get("op") != "cell":
                    break
                if die_after is not None and completed >= die_after:
                    # Chaos: vanish with this cell unanswered.
                    return completed
                outcome = runner(message["payload"])
                try:
                    _send(stream, {"op": "result",
                                   "index": message["index"],
                                   "outcome": outcome})
                except (OSError, ValueError):
                    break
                completed += 1
    return completed


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep-worker",
        description="work-stealing sweep worker (sockets backend)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="coordinator host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, required=True,
                        help="coordinator port")
    parser.add_argument("--worker-id", default="worker",
                        help="name reported to the coordinator")
    parser.add_argument("--die-after", type=int, default=None,
                        help="chaos: crash after N completed cells")
    args = parser.parse_args(argv)
    try:
        completed = run_worker(args.host, args.port,
                               worker_id=args.worker_id,
                               die_after=args.die_after)
    except (OSError, DistribError) as error:
        print(f"worker error: {error}")
        return 1
    print(f"{args.worker_id}: resolved {completed} cell(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
