"""Unit helpers used throughout the cost models.

The analytical models work internally in SI base units: bytes, seconds,
FLOPs (floating-point operations) and FLOP/s. These constants and helpers
make call sites read like the paper's prose ("459 TFLOPS", "96 GB of HBM",
"2765 GB/s") without sprinkling powers of ten everywhere.
"""

from __future__ import annotations

# Decimal (SI) multipliers -- bandwidths and FLOP rates are quoted decimal.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# Binary multipliers -- memory capacities are quoted binary in the paper
# (e.g. the 5.6 TiB quantized database).
KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

MS_PER_S = 1e3
US_PER_S = 1e6


def tflops(value: float) -> float:
    """Convert teraFLOP/s to FLOP/s."""
    return value * TERA


def gb_per_s(value: float) -> float:
    """Convert GB/s (decimal) to bytes/s."""
    return value * GIGA


def gib(value: float) -> float:
    """Convert GiB (binary) to bytes."""
    return value * GIB


def gb(value: float) -> float:
    """Convert GB (decimal) to bytes."""
    return value * GIGA


def tib(value: float) -> float:
    """Convert TiB (binary) to bytes."""
    return value * TIB


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value * MS_PER_S


def ms_to_seconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / MS_PER_S


def billions(value: float) -> float:
    """Convert a count quoted in billions (e.g. parameters) to a raw count."""
    return value * 1e9


def millions(value: float) -> float:
    """Convert a count quoted in millions to a raw count."""
    return value * 1e6
