"""Model sharding strategies across multiple accelerators.

The paper's simulator "evaluates a range of model sharding strategies ...
pipeline parallelism, tensor parallelism, and hybrid approaches" (§4a).
A :class:`ShardingPlan` fixes the tensor-parallel (TP) and pipeline-
parallel (PP) degrees; :func:`enumerate_plans` lists every power-of-two
factorization of a chip budget, and the evaluation helpers compute the
latency of an operator list under a plan.

Modelling choices:

* TP shards every operator's FLOPs, weights and activations across the TP
  group and adds two ring all-reduces of the residual activation per layer.
* PP splits layers across stages; a single batch still traverses every
  layer sequentially, so PP does not reduce single-batch latency (it adds
  stage-boundary transfers) but multiplies steady-state throughput by the
  number of stages, which work on different batches concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import ConfigError
from repro.hardware.accelerator import XPUSpec
from repro.hardware.roofline import all_reduce_time, communication_time, roofline_time
from repro.models.operators import Operator


@dataclass(frozen=True)
class ShardingPlan:
    """A (tensor-parallel, pipeline-parallel) sharding of one model.

    Attributes:
        tensor_parallel: Chips cooperating on every operator.
        pipeline_parallel: Pipeline stages (layer partitions).
    """

    tensor_parallel: int
    pipeline_parallel: int

    def __post_init__(self) -> None:
        if self.tensor_parallel <= 0 or self.pipeline_parallel <= 0:
            raise ConfigError("parallelism degrees must be positive")

    @property
    def num_chips(self) -> int:
        """Total accelerators the plan occupies."""
        return self.tensor_parallel * self.pipeline_parallel


def _powers_of_two_up_to(limit: int) -> Iterable[int]:
    value = 1
    while value <= limit:
        yield value
        value *= 2


def enumerate_plans(num_chips: int, max_pipeline: int = 16) -> List[ShardingPlan]:
    """All power-of-two (TP, PP) factorizations of ``num_chips``.

    Args:
        num_chips: Chip budget; must be a power of two.
        max_pipeline: Cap on pipeline depth (very deep pipelines are not
            used in practice for serving).

    Raises:
        ConfigError: if ``num_chips`` is not a positive power of two.
    """
    if num_chips <= 0 or num_chips & (num_chips - 1):
        raise ConfigError(f"num_chips must be a power of two, got {num_chips}")
    plans = []
    for pp in _powers_of_two_up_to(min(num_chips, max_pipeline)):
        if num_chips % pp == 0:
            plans.append(ShardingPlan(tensor_parallel=num_chips // pp,
                                      pipeline_parallel=pp))
    return plans


def operators_latency(operators: Sequence[Operator], plan: ShardingPlan,
                      xpu: XPUSpec, allreduce_bytes_per_layer: float,
                      num_layers: int,
                      stage_boundary_bytes: float = 0.0) -> float:
    """Latency for one batch to traverse all operators under a plan.

    Args:
        operators: Operator list (with per-layer counts) from
            :mod:`repro.models.operators`.
        plan: Sharding plan; TP shards each operator, PP adds boundary
            transfers.
        xpu: Accelerator executing the plan.
        allreduce_bytes_per_layer: Residual-activation payload all-reduced
            across the TP group, per layer, per all-reduce (two per layer).
        num_layers: Transformer depth (for communication counts).
        stage_boundary_bytes: Activation payload crossing each PP stage
            boundary.

    Returns:
        Seconds for a single batch to flow through the whole model.
    """
    tp = plan.tensor_parallel
    compute = 0.0
    for op in operators:
        per_invocation = roofline_time(
            flops=op.flops / tp,
            data_bytes=op.total_bytes / tp,
            compute_rate=xpu.effective_flops,
            mem_bandwidth=xpu.effective_mem_bandwidth,
        )
        compute += per_invocation * op.count
    comm = 0.0
    if tp > 1:
        per_allreduce = all_reduce_time(allreduce_bytes_per_layer, tp,
                                        xpu.interconnect_bandwidth)
        comm += 2.0 * num_layers * per_allreduce
    if plan.pipeline_parallel > 1 and stage_boundary_bytes > 0:
        boundaries = plan.pipeline_parallel - 1
        comm += boundaries * communication_time(stage_boundary_bytes,
                                                xpu.interconnect_bandwidth)
    return compute + comm
