"""Facade over the prefill and decode models.

:class:`InferenceSimulator` is the single entry point the pipeline layer
uses: give it a model, chip count, batch and sequence lengths, and it
returns phase performance, caching repeated evaluations (RAGO's
exhaustive search re-queries the same points many times, Algorithm 1
step 1). Prefill exposes its Pareto frontier over sharding plans because
tensor-parallel (latency-lean) and pipeline-parallel (throughput-lean)
plans trade off; RAGO picks per schedule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.hardware.accelerator import XPUSpec
from repro.inference.decode import DecodeModel, DecodePerf
from repro.inference.memory import MemoryModel
from repro.inference.parallelism import ShardingPlan
from repro.inference.prefill import PrefillModel, PrefillPerf
from repro.models.transformer import TransformerConfig


class InferenceSimulator:
    """Cached analytical inference simulator for one accelerator type."""

    def __init__(self, xpu: XPUSpec,
                 memory: Optional[MemoryModel] = None) -> None:
        self._xpu = xpu
        self._memory = memory or MemoryModel()
        self._prefill = PrefillModel(xpu, self._memory)
        self._decode = DecodeModel(xpu, self._memory)
        self._prefill_cache: Dict[Tuple, List[PrefillPerf]] = {}
        self._decode_cache: Dict[Tuple, DecodePerf] = {}

    @property
    def xpu(self) -> XPUSpec:
        """Accelerator generation this simulator models."""
        return self._xpu

    @property
    def memory(self) -> MemoryModel:
        """Memory accounting shared by both phases."""
        return self._memory

    def min_chips(self, model: TransformerConfig, max_chips: int = 1024) -> int:
        """Smallest power-of-two chip count whose HBM holds the weights."""
        chips = 1
        budget_per_chip = self._xpu.hbm_bytes * self._memory.usable_fraction
        while chips <= max_chips:
            if model.weight_bytes / chips <= budget_per_chip:
                return chips
            chips *= 2
        return chips

    def prefill_options(self, model: TransformerConfig, num_chips: int,
                        batch: int, seq_len: int) -> List[PrefillPerf]:
        """Pareto frontier over sharding plans (cached).

        See :meth:`PrefillModel.pareto_perfs` for semantics and errors.
        """
        key = (model.name, num_chips, batch, seq_len)
        if key not in self._prefill_cache:
            self._prefill_cache[key] = self._prefill.pareto_perfs(
                model, num_chips, batch, seq_len)
        return self._prefill_cache[key]

    def prefill(self, model: TransformerConfig, num_chips: int, batch: int,
                seq_len: int, optimize_for: str = "latency",
                plan: Optional[ShardingPlan] = None) -> PrefillPerf:
        """One prefill performance point.

        Args:
            plan: Evaluate this exact sharding plan; otherwise the
                frontier endpoint selected by ``optimize_for``.
        """
        if plan is not None:
            return self._prefill.plan_perf(model, plan, batch, seq_len)
        if optimize_for not in ("latency", "throughput"):
            raise ConfigError(f"unknown objective {optimize_for!r}")
        frontier = self.prefill_options(model, num_chips, batch, seq_len)
        return frontier[0] if optimize_for == "latency" else frontier[-1]

    def decode(self, model: TransformerConfig, num_chips: int, batch: int,
               prefix_len: int, decode_len: int,
               optimize_for: str = "throughput") -> DecodePerf:
        """Decode performance (cached; TP-only plan, see DecodeModel)."""
        key = (model.name, num_chips, batch, prefix_len, decode_len)
        if key not in self._decode_cache:
            self._decode_cache[key] = self._decode.best_perf(
                model, num_chips, batch, prefix_len, decode_len, optimize_for)
        return self._decode_cache[key]
