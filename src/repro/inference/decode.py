"""Decode (token generation) phase model.

Decode generates one token per sequence per step and is memory-bound: each
step streams the full weights plus every sequence's KV cache (§2). The
model reports worst-case TPOT (the paper reports worst-case because
continuous batching mixes sequences at different positions, §4) and
steady-state throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CapacityError, ConfigError
from repro.hardware.accelerator import XPUSpec
from repro.inference.memory import MemoryModel
from repro.inference.parallelism import ShardingPlan, operators_latency
from repro.models.operators import decode_step_operators
from repro.models.transformer import TransformerConfig


@dataclass(frozen=True)
class DecodePerf:
    """Performance of a decode configuration.

    Attributes:
        tpot: Worst-case time-per-output-token in seconds (step latency at
            the longest context: prompt + full generation).
        mean_step_latency: Step latency at the mean context length, which
            determines sustained throughput.
        sequence_latency: Seconds to generate all ``decode_len`` tokens of
            one batch of sequences.
        throughput: Sequences per second at steady state (continuous
            batching keeps the batch full).
        plan: Sharding plan that achieved it.
        batch: Decode batch size.
        max_batch: Largest batch the KV-cache capacity would allow.
    """

    tpot: float
    mean_step_latency: float
    sequence_latency: float
    throughput: float
    plan: ShardingPlan
    batch: int
    max_batch: int


class DecodeModel:
    """Analytical decode cost model over one accelerator type."""

    def __init__(self, xpu: XPUSpec,
                 memory: Optional[MemoryModel] = None) -> None:
        self._xpu = xpu
        self._memory = memory or MemoryModel()

    @property
    def xpu(self) -> XPUSpec:
        """Accelerator the model evaluates against."""
        return self._xpu

    def step_latency(self, model: TransformerConfig, plan: ShardingPlan,
                     batch: int, context_len: float) -> float:
        """Latency of one decode step at a given context length."""
        operators = decode_step_operators(
            model, batch, context_len,
            kv_bytes_per_element=self._memory.kv_bytes_per_element,
        )
        activation_payload = batch * model.d_model * model.activation_bytes
        return operators_latency(
            operators,
            plan,
            self._xpu,
            allreduce_bytes_per_layer=activation_payload,
            num_layers=model.num_layers,
            stage_boundary_bytes=activation_payload,
        )

    def plan_perf(self, model: TransformerConfig, plan: ShardingPlan,
                  batch: int, prefix_len: int, decode_len: int) -> DecodePerf:
        """Evaluate one sharding plan for a full generation phase.

        Raises:
            CapacityError: when weights or the batch's KV cache do not fit.
            ConfigError: on non-positive lengths.
        """
        if prefix_len < 0 or decode_len <= 0:
            raise ConfigError("prefix_len must be >= 0 and decode_len > 0")
        self._memory.require_weights_fit(model, plan, self._xpu)
        worst_context = float(prefix_len + decode_len)
        max_batch = self._memory.max_decode_batch(model, plan, self._xpu,
                                                  worst_context)
        if batch > max_batch:
            raise CapacityError(
                f"decode batch {batch} exceeds KV-cache capacity "
                f"({max_batch}) for {model.name} on {plan.num_chips} chips"
            )
        mean_context = prefix_len + decode_len / 2.0
        mean_step = self.step_latency(model, plan, batch, mean_context)
        worst_step = self.step_latency(model, plan, batch, worst_context)
        sequence_latency = decode_len * mean_step
        throughput = batch / sequence_latency
        return DecodePerf(
            tpot=worst_step,
            mean_step_latency=mean_step,
            sequence_latency=sequence_latency,
            throughput=throughput,
            plan=plan,
            batch=batch,
            max_batch=max_batch,
        )

    def best_perf(self, model: TransformerConfig, num_chips: int, batch: int,
                  prefix_len: int, decode_len: int,
                  optimize_for: str = "throughput") -> DecodePerf:
        """Decode performance on ``num_chips`` chips.

        Decode shards tensor-parallel across the whole allocation: its
        per-step communication payload is tiny (one token's activations),
        so TP minimizes TPOT, and pipeline-parallel decode would multiply
        the in-flight batch without improving per-chip throughput. The
        ``optimize_for`` argument is accepted for interface symmetry; the
        TP-only plan is optimal for both objectives here.

        Raises:
            CapacityError: when the weights or KV cache do not fit.
        """
        if optimize_for not in ("latency", "throughput"):
            raise ConfigError(f"unknown objective {optimize_for!r}")
        plan = ShardingPlan(tensor_parallel=num_chips, pipeline_parallel=1)
        return self.plan_perf(model, plan, batch, prefix_len, decode_len)
