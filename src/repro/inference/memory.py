"""Accelerator memory accounting for model weights and KV cache.

The paper assumes int8 weights, so "the accelerator memory requirement
directly corresponds to the model's parameter count" (§4), and notes that
KV-cache capacity bounds decode batch sizes (§5.2, reason II for RAG's
long-context advantage). This module decides whether a sharding plan fits
and how large a decode batch the remaining HBM supports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, ConfigError
from repro.hardware.accelerator import XPUSpec
from repro.inference.parallelism import ShardingPlan
from repro.models.transformer import TransformerConfig


@dataclass(frozen=True)
class MemoryModel:
    """Memory feasibility checks for a model on a set of accelerators.

    Attributes:
        usable_fraction: Share of HBM available to weights + KV cache
            (the rest is reserved for activations and runtime buffers).
        kv_bytes_per_element: KV-cache precision (1 byte under the
            paper's int8 assumption).
    """

    usable_fraction: float = 0.9
    kv_bytes_per_element: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.usable_fraction <= 1:
            raise ConfigError("usable_fraction must be in (0, 1]")
        if self.kv_bytes_per_element <= 0:
            raise ConfigError("kv_bytes_per_element must be positive")

    def weights_per_chip(self, model: TransformerConfig,
                         plan: ShardingPlan) -> float:
        """Weight bytes stored on each chip under the plan."""
        return model.weight_bytes / plan.num_chips

    def weights_fit(self, model: TransformerConfig, plan: ShardingPlan,
                    xpu: XPUSpec) -> bool:
        """Whether the sharded weights fit in usable HBM."""
        budget = xpu.hbm_bytes * self.usable_fraction
        return self.weights_per_chip(model, plan) <= budget

    def require_weights_fit(self, model: TransformerConfig,
                            plan: ShardingPlan, xpu: XPUSpec) -> None:
        """Raise :class:`CapacityError` when the weights do not fit."""
        if not self.weights_fit(model, plan, xpu):
            raise CapacityError(
                f"{model.name} needs "
                f"{self.weights_per_chip(model, plan) / 1e9:.1f} GB/chip on "
                f"{plan.num_chips} chips but {xpu.name} offers "
                f"{xpu.hbm_bytes * self.usable_fraction / 1e9:.1f} GB usable"
            )

    def kv_bytes_per_sequence(self, model: TransformerConfig,
                              context_len: float) -> float:
        """KV-cache bytes one sequence occupies at a context length."""
        if context_len < 0:
            raise ConfigError("context_len must be non-negative")
        per_token = model.kv_cache_bytes_per_token(self.kv_bytes_per_element)
        return per_token * context_len

    def max_decode_batch(self, model: TransformerConfig, plan: ShardingPlan,
                         xpu: XPUSpec, context_len: float) -> int:
        """Largest decode batch whose KV cache fits beside the weights.

        Returns 0 when even a single sequence does not fit.
        """
        budget = xpu.hbm_bytes * self.usable_fraction * plan.num_chips
        available = budget - model.weight_bytes
        if available <= 0:
            return 0
        per_seq = self.kv_bytes_per_sequence(model, context_len)
        if per_seq <= 0:
            # Encoders keep no KV cache; batch is unbounded by memory.
            return 1 << 30
        return int(available // per_seq)
