"""Prefill (prompt computation) phase model.

Prefill processes the whole input sequence at once and is compute-bound
even at small batch sizes (§2). Sharding matters in two distinct ways:

* **Tensor parallelism** splits every operator across chips -- it shrinks
  the single-batch latency but pays per-layer all-reduces.
* **Pipeline parallelism** splits layers into stages and streams
  micro-batches through them -- steady-state throughput scales with the
  stage count while a request's latency stays near one full traverse.

For a batch ``B`` on plan (tp, pp) the batch is cut into micro-batches of
``m = ceil(B / pp)``; one traverse of all layers at micro-batch size m
takes ``T``; each stage then occupies ``T / pp``, so

* batch latency  = ``T + (k - 1) * T / pp`` with ``k = ceil(B / m)``
  micro-batches in flight, and
* throughput     = ``m * pp / T`` sequences/second at steady state.

Both plan flavours can be Pareto-optimal (TP for latency, PP for
throughput), so :meth:`PrefillModel.pareto_perfs` exposes the full
frontier over plans and RAGO picks per schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import CapacityError, ConfigError
from repro.hardware.accelerator import XPUSpec
from repro.inference.memory import MemoryModel
from repro.inference.parallelism import (
    ShardingPlan,
    enumerate_plans,
    operators_latency,
)
from repro.models.operators import prefill_operators
from repro.models.transformer import TransformerConfig


@dataclass(frozen=True)
class PrefillPerf:
    """Performance of a prefill configuration.

    Attributes:
        latency: Seconds until the whole batch has finished prefill (the
            TTFT contribution of this stage).
        throughput: Sequences per second at steady state.
        plan: The sharding plan that achieved it.
        batch: Batch size evaluated.
        seq_len: Prompt length in tokens.
    """

    latency: float
    throughput: float
    plan: ShardingPlan
    batch: int
    seq_len: int


class PrefillModel:
    """Analytical prefill cost model over one accelerator type."""

    def __init__(self, xpu: XPUSpec,
                 memory: Optional[MemoryModel] = None) -> None:
        self._xpu = xpu
        self._memory = memory or MemoryModel()

    @property
    def xpu(self) -> XPUSpec:
        """Accelerator the model evaluates against."""
        return self._xpu

    def plan_perf(self, model: TransformerConfig, plan: ShardingPlan,
                  batch: int, seq_len: int) -> PrefillPerf:
        """Evaluate one sharding plan.

        Raises:
            CapacityError: when the plan's weight shards do not fit.
        """
        self._memory.require_weights_fit(model, plan, self._xpu)
        pp = plan.pipeline_parallel
        microbatch = math.ceil(batch / pp)
        in_flight = math.ceil(batch / microbatch)
        operators = prefill_operators(model, microbatch, seq_len)
        activation_payload = (microbatch * seq_len * model.d_model
                              * model.activation_bytes)
        traverse = operators_latency(
            operators,
            plan,
            self._xpu,
            allreduce_bytes_per_layer=activation_payload,
            num_layers=model.num_layers,
            stage_boundary_bytes=activation_payload,
        )
        latency = traverse + (in_flight - 1) * traverse / pp
        throughput = microbatch * pp / traverse
        return PrefillPerf(latency=latency, throughput=throughput, plan=plan,
                           batch=batch, seq_len=seq_len)

    def pareto_perfs(self, model: TransformerConfig, num_chips: int,
                     batch: int, seq_len: int) -> List[PrefillPerf]:
        """Pareto frontier over sharding plans (min latency, max QPS).

        Raises:
            CapacityError: when no factorization fits in HBM.
        """
        perfs: List[PrefillPerf] = []
        last_error: Optional[CapacityError] = None
        for plan in enumerate_plans(num_chips):
            try:
                perfs.append(self.plan_perf(model, plan, batch, seq_len))
            except CapacityError as error:
                last_error = error
        if not perfs:
            raise last_error or CapacityError(
                f"{model.name} does not fit on {num_chips} x {self._xpu.name}"
            )
        perfs.sort(key=lambda perf: (perf.latency, -perf.throughput))
        frontier: List[PrefillPerf] = []
        best = -math.inf
        for perf in perfs:
            if perf.throughput > best:
                frontier.append(perf)
                best = perf.throughput
        return frontier

    def best_perf(self, model: TransformerConfig, num_chips: int, batch: int,
                  seq_len: int, optimize_for: str = "latency") -> PrefillPerf:
        """Best feasible plan on ``num_chips`` chips for one objective.

        Args:
            optimize_for: ``"latency"`` (fastest batch completion) or
                ``"throughput"`` (highest steady-state sequences/s).

        Raises:
            CapacityError: when no factorization fits in HBM.
            ConfigError: on an unknown objective.
        """
        if optimize_for not in ("latency", "throughput"):
            raise ConfigError(f"unknown objective {optimize_for!r}")
        frontier = self.pareto_perfs(model, num_chips, batch, seq_len)
        if optimize_for == "latency":
            return frontier[0]
        return frontier[-1]
