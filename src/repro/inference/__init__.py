"""Analytical LLM inference cost model.

Implements the paper's XPU inference simulator (§4a): operator-level
rooflines, tensor/pipeline parallelism with explicit communication costs,
KV-cache memory accounting, and prefill/decode phase models. No ML runs;
latency and throughput are computed analytically from a
:class:`~repro.models.TransformerConfig` and an
:class:`~repro.hardware.XPUSpec`.
"""

from repro.inference.parallelism import ShardingPlan, enumerate_plans
from repro.inference.memory import MemoryModel
from repro.inference.prefill import PrefillModel, PrefillPerf
from repro.inference.decode import DecodeModel, DecodePerf
from repro.inference.simulator import InferenceSimulator

__all__ = [
    "ShardingPlan",
    "enumerate_plans",
    "MemoryModel",
    "PrefillModel",
    "PrefillPerf",
    "DecodeModel",
    "DecodePerf",
    "InferenceSimulator",
]
