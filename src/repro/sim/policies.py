"""Pluggable batching and admission policies for the serving DES.

The batching/admission logic used to be hardwired inside the
simulator's stations; these interfaces make each decision point a
policy object so scenario studies swap strategies instead of forking
the simulator:

* :class:`DispatchPolicy` -- when a pre-decode batch station fires and
  how many queued requests it takes. Variants: deadline flush (the
  default; matches the paper's "dispatch when full, or after max_wait
  with a partial batch"), strict full batch, and size capped.
* :class:`AdmissionPolicy` -- how many waiting sequences the
  continuous-batching decode executor admits at a step boundary.
  Variants: greedy slot filling (default) and a token-budget admission
  that bounds the live KV footprint.

Policies are stateless frozen dataclasses: one instance can serve many
stations and is safely shared across simulator builds. The named
registries hold the policies that are usable with zero configuration:
``DISPATCH_POLICIES`` backs the CLI's ``--dispatch`` selection and
``ADMISSION_POLICIES`` its ``--admission`` names. Parameterized
policies spell their parameter inline -- ``token-budget=4096`` -- and
are parsed by :func:`parse_admission_policy`;
:func:`admission_spec` is the inverse, so a selection round-trips
through a ``--json`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigError

__all__ = [
    "DispatchPolicy",
    "DeadlineFlushPolicy",
    "FullBatchPolicy",
    "SizeCappedPolicy",
    "AdmissionPolicy",
    "GreedyAdmission",
    "TokenBudgetAdmission",
    "PriorityAdmission",
    "DISPATCH_POLICIES",
    "ADMISSION_POLICIES",
    "resolve_dispatch_policy",
    "resolve_admission_policy",
    "parse_admission_policy",
    "admission_spec",
]


@dataclass(frozen=True)
class DispatchPolicy:
    """Decides when a batch station dispatches and how much it takes.

    Subclasses override :meth:`take` (and optionally
    :meth:`flush_delay` / :meth:`flush_take`). ``max_wait`` of None
    means "resolve to the stage's own batch latency at build time"
    (see :meth:`resolve`), the tail-deadlock guard the paper's serving
    model uses.
    """

    max_wait: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_wait is not None and self.max_wait < 0:
            raise ConfigError("max_wait must be non-negative")

    @property
    def name(self) -> str:
        """Registry name (kebab-case class name by default)."""
        return type(self).__name__.replace("Policy", "").lower()

    def resolve(self, default_wait: float) -> "DispatchPolicy":
        """A concrete copy with ``max_wait`` filled from the stage
        default when unset."""
        if self.max_wait is not None:
            return self
        return replace(self, max_wait=default_wait)

    # -- decision points ----------------------------------------------

    def take(self, queued: int, batch_size: int, waited: float) -> int:
        """How many requests to dispatch right now (0 = keep waiting).

        Args:
            queued: Requests currently waiting at the station.
            batch_size: The schedule's batch size for this stage.
            waited: Seconds the oldest queued request has waited.
        """
        raise NotImplementedError

    def flush_delay(self, waited: float) -> Optional[float]:
        """Seconds until a forced partial-batch flush (None = never)."""
        if self.max_wait is None:
            return None
        return self.max_wait - waited

    def flush_take(self, queued: int, batch_size: int) -> int:
        """Batch size of a forced flush."""
        return min(batch_size, queued)


@dataclass(frozen=True)
class DeadlineFlushPolicy(DispatchPolicy):
    """Dispatch when the batch is full, or once the oldest request has
    waited ``max_wait`` (the simulator's historical default)."""

    @property
    def name(self) -> str:
        return "deadline-flush"

    def take(self, queued: int, batch_size: int, waited: float) -> int:
        full = queued >= batch_size
        stale = self.max_wait is not None and waited >= self.max_wait
        if full or stale:
            return min(batch_size, queued)
        return 0


@dataclass(frozen=True)
class FullBatchPolicy(DispatchPolicy):
    """Dispatch only complete batches; never flush a partial one.

    Maximizes per-dispatch efficiency at the cost of tail latency: the
    last ``offered mod batch_size`` requests of a finite trace can wait
    forever (they are reported as unfinished).
    """

    @property
    def name(self) -> str:
        return "full-batch"

    def resolve(self, default_wait: float) -> "DispatchPolicy":
        return self  # no deadline to fill in

    def take(self, queued: int, batch_size: int, waited: float) -> int:
        return batch_size if queued >= batch_size else 0

    def flush_delay(self, waited: float) -> Optional[float]:
        return None


@dataclass(frozen=True)
class SizeCappedPolicy(DispatchPolicy):
    """Deadline flush with dispatches capped below the schedule's batch.

    Trades peak station efficiency for lower batching delay -- the
    knob the paper's micro-batching ablation turns.

    Attributes:
        cap: Largest dispatch this station may issue (>= 1).
    """

    cap: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cap < 1:
            raise ConfigError("cap must be at least 1")

    @property
    def name(self) -> str:
        return "size-capped"

    def _effective(self, batch_size: int) -> int:
        return min(self.cap, batch_size)

    def take(self, queued: int, batch_size: int, waited: float) -> int:
        effective = self._effective(batch_size)
        full = queued >= effective
        stale = self.max_wait is not None and waited >= self.max_wait
        if full or stale:
            return min(effective, queued)
        return 0

    def flush_take(self, queued: int, batch_size: int) -> int:
        return min(self._effective(batch_size), queued)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Decides how many waiting sequences decode admits at a step
    boundary."""

    #: Policies that rank waiting sequences set this True so the
    #: decode executors consult :meth:`priority` on every enqueue;
    #: the stock FIFO policies skip that work entirely.
    reorders_waiting: ClassVar[bool] = False

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Admission", "").lower()

    def admit(self, waiting_lens: Sequence[int],
              running_remaining: Sequence[int], capacity: int) -> int:
        """How many of the waiting sequences to admit (FIFO prefix).

        Args:
            waiting_lens: Decode lengths of the waiting sequences, in
                queue order.
            running_remaining: Tokens left for each sequence already in
                the running batch.
            capacity: The schedule's decode batch size.
        """
        raise NotImplementedError

    def priority(self, record: Any) -> int:
        """Rank a request for the decode waiting queue (higher first).

        Only consulted when :attr:`reorders_waiting` is True. Requests
        keep FIFO order within a rank, so the default constant rank is
        exactly the historical FIFO queue.
        """
        return 0


@dataclass(frozen=True)
class GreedyAdmission(AdmissionPolicy):
    """Fill every free slot immediately (the historical default)."""

    def admit(self, waiting_lens: Sequence[int],
              running_remaining: Sequence[int], capacity: int) -> int:
        return max(0, min(len(waiting_lens),
                          capacity - len(running_remaining)))


@dataclass(frozen=True)
class TokenBudgetAdmission(AdmissionPolicy):
    """Admit while the batch's outstanding token debt stays under a
    budget.

    Bounds the KV-cache footprint the running batch can grow to: a
    sequence only joins when its full decode length fits under
    ``max_tokens`` alongside everything still generating.

    Attributes:
        max_tokens: Ceiling on the summed remaining decode tokens of
            the running batch.
    """

    max_tokens: int = 0

    def __post_init__(self) -> None:
        if self.max_tokens <= 0:
            raise ConfigError("max_tokens must be positive")

    @property
    def name(self) -> str:
        return "token-budget"

    def admit(self, waiting_lens: Sequence[int],
              running_remaining: Sequence[int], capacity: int) -> int:
        if waiting_lens and waiting_lens[0] > self.max_tokens:
            # Admission is a FIFO prefix: a head request that cannot fit
            # even an empty batch would wedge the executor forever (and
            # head-of-line block everything behind it), so fail loudly.
            raise ConfigError(
                f"request decode length {waiting_lens[0]} exceeds the "
                f"admission token budget {self.max_tokens}; raise "
                f"max_tokens or cap decode lengths")
        slots = capacity - len(running_remaining)
        debt = sum(running_remaining)
        count = 0
        for length in waiting_lens:
            if count >= slots or debt + length > self.max_tokens:
                break
            debt += length
            count += 1
        return count


@dataclass(frozen=True)
class PriorityAdmission(AdmissionPolicy):
    """Tier-ranked admission: high-priority tiers jump the decode queue.

    Slot accounting is greedy, but the waiting queue itself is kept in
    tier-priority order (FIFO within a tier), so under overload the
    contended decode slots go to ``paid`` sequences first and ``free``
    traffic absorbs the queueing delay. Nothing is dropped -- shedding
    is deferral, which is what keeps the zero-loss serving contract.

    Attributes:
        tier_priority: ``(tier name, rank)`` pairs; higher ranks admit
            first. Requests with no tier (or an unlisted one) rank 0,
            sharing the queue with the lowest default tier.
    """

    tier_priority: Tuple[Tuple[str, int], ...] = (("free", 0), ("paid", 1))

    reorders_waiting: ClassVar[bool] = True

    def __post_init__(self) -> None:
        names = [name for name, _ in self.tier_priority]
        if len(names) != len(set(names)):
            raise ConfigError(
                f"duplicate tier in priority admission: {names}")

    @property
    def name(self) -> str:
        return "priority"

    def priority(self, record: Any) -> int:
        tier = getattr(record, "tier", None)
        if tier is not None:
            for name, rank in self.tier_priority:
                if name == tier:
                    return rank
        return 0

    def admit(self, waiting_lens: Sequence[int],
              running_remaining: Sequence[int], capacity: int) -> int:
        return max(0, min(len(waiting_lens),
                          capacity - len(running_remaining)))


#: Named dispatch policies for the CLI / config front-ends. Values are
#: zero-argument factories returning the default-configured policy.
DISPATCH_POLICIES: Dict[str, Callable[[], DispatchPolicy]] = {
    "deadline-flush": DeadlineFlushPolicy,
    "full-batch": FullBatchPolicy,
    "size-capped": SizeCappedPolicy,
}

#: Named admission policies for the CLI / config front-ends.
ADMISSION_POLICIES: Dict[str, Callable[[], AdmissionPolicy]] = {
    "greedy": GreedyAdmission,
    "priority": PriorityAdmission,
}


def resolve_dispatch_policy(
        policy: Union[None, str, DispatchPolicy]) -> DispatchPolicy:
    """Normalize a dispatch-policy argument (None/name/instance)."""
    if policy is None:
        return DeadlineFlushPolicy()
    if isinstance(policy, DispatchPolicy):
        return policy
    try:
        return DISPATCH_POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted(DISPATCH_POLICIES))
        raise ConfigError(
            f"unknown dispatch policy {policy!r}; known: {known}"
        ) from None


def resolve_admission_policy(
        policy: Union[None, str, AdmissionPolicy]) -> AdmissionPolicy:
    """Normalize an admission-policy argument (None/name/instance)."""
    if policy is None:
        return GreedyAdmission()
    if isinstance(policy, AdmissionPolicy):
        return policy
    try:
        return ADMISSION_POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted(ADMISSION_POLICIES))
        hint = ("; parameterized: token-budget=<int>"
                if policy.partition("=")[0] == "token-budget" else "")
        raise ConfigError(
            f"unknown admission policy {policy!r}; known: {known}{hint}"
        ) from None


def _tier_priority_value(value: str) -> Tuple[Tuple[str, int], ...]:
    """Convert ``free:0|paid:1`` into ``tier_priority`` pairs.

    Raises ``ValueError`` (not :class:`ConfigError`) so it plugs into
    the shared spec-value converter, which owns the diagnostic shape.
    """
    pairs = []
    for part in value.split("|"):
        name, colon, rank = part.partition(":")
        name = name.strip()
        if not colon or not name:
            raise ValueError(part)
        pairs.append((name, int(rank.strip())))
    return tuple(pairs)


def parse_admission_policy(
        spec: Union[None, str, AdmissionPolicy]) -> AdmissionPolicy:
    """Parse a CLI/config admission selection, values included.

    Accepts everything :func:`resolve_admission_policy` does, plus the
    parameterized ``name=value`` syntax: ``token-budget=<int>`` (the
    decode-KV ceiling) and ``priority=<tier>:<rank>|...`` (an explicit
    tier ranking overriding the default free/paid pair).

    Raises:
        ConfigError: on an unknown name, a value on a policy that
            takes none, a missing or non-integer token budget, or a
            non-positive one (the policy's own validation).
    """
    if spec is None or isinstance(spec, AdmissionPolicy):
        return resolve_admission_policy(spec)
    # Imported here: repro.config pulls in the sim package for its
    # envelope serializers, so a top-level import would be circular.
    from repro.config.specs import convert_spec_value

    name, equals, value = spec.partition("=")
    name = name.strip()
    if not equals:
        if name == "token-budget":
            raise ConfigError(
                "token-budget admission needs a budget: pass "
                "token-budget=<int> (e.g. token-budget=4096)")
        return resolve_admission_policy(name)
    if name == "token-budget":
        max_tokens = convert_spec_value(
            value, int, label="admission", key="token-budget",
            expected="token-budget=<int>")
        return TokenBudgetAdmission(max_tokens=max_tokens)
    if name == "priority":
        tier_priority = convert_spec_value(
            value, _tier_priority_value, label="admission",
            key="priority", expected="priority=<tier>:<rank>|...")
        return PriorityAdmission(tier_priority=tier_priority)
    if name in ADMISSION_POLICIES:
        raise ConfigError(
            f"admission policy {name!r} takes no value; drop "
            f"'={value}'")
    return resolve_admission_policy(name)  # uniform unknown-name error


def admission_spec(policy: AdmissionPolicy) -> str:
    """The CLI spelling of an admission policy.

    The inverse of :func:`parse_admission_policy`: the returned string
    parses back to an equal policy, which is how a ``--json`` artifact
    round-trips parameterized admission.
    """
    if isinstance(policy, TokenBudgetAdmission):
        return f"token-budget={policy.max_tokens}"
    if isinstance(policy, PriorityAdmission) \
            and policy.tier_priority != PriorityAdmission().tier_priority:
        ranking = "|".join(f"{name}:{rank}"
                           for name, rank in policy.tier_priority)
        return f"priority={ranking}"
    return policy.name
