"""Serving-simulation data types and the incremental metrics pipeline.

Everything the DES measures lives here: the per-request lifecycle
(:class:`RequestRecord`), latency targets (:class:`SLOTarget`), the two
result artifacts (:class:`ServingMetrics` for bare-arrival runs,
:class:`ServingReport` for trace replays), and the
:class:`MetricsAccumulator` that builds them **incrementally** -- each
completion is folded in as it happens, so a live front-end can snapshot
running statistics mid-flight (:class:`LiveSnapshot`) while a batch
replay still gets the exact aggregates the pre-refactor simulator
computed after the fact.

Historically these types lived in :mod:`repro.sim.serving`; they moved
here so the incremental engine (:mod:`repro.sim.engine`) can use them
without importing the open-loop driver. The old import paths keep
working via re-exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.schema.stages import Stage, pipeline_stages

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schema.ragschema import RAGSchema
    from repro.workloads.traces import RequestTrace


@dataclass
class RequestRecord:
    """Lifecycle of one request through the simulated deployment.

    Attributes:
        request_id: Arrival index.
        arrival: Arrival time in seconds.
        decode_len: Tokens this request generates (the workload profile's
            decode length unless per-request lengths were supplied).
        stage_completions: Completion time per pipeline stage.
        stage_enqueues: Last enqueue time per stage (queueing bookkeeping).
        queue_waits: Accumulated queueing delay per stage (a stage visited
            repeatedly, e.g. iterative re-prefix, accumulates).
        first_token_time: When the prefix stage finished (first token).
        completion_time: When the last decode step finished.
        user_id: Issuing user, when the workload carries identity
            (closed-loop populations); None for anonymous open-loop
            arrivals.
        session_id: Session the request belongs to (requests within a
            session are correlated and route sticky under
            session-affine policies); None when anonymous.
        tier: SLO tier label (e.g. ``"free"``/``"paid"``) used by
            tier-aware admission and per-tier reporting; None when
            anonymous.
        slab: Engine-local index into the fast path's per-stage
            bookkeeping slabs (-1 outside the fast path). Deliberately
            separate from ``request_id``, which a fleet rewrites to the
            fleet-wide arrival index after submission; excluded from
            equality so records compare on lifecycle alone.
    """

    request_id: int
    arrival: float
    decode_len: int = 0
    user_id: Optional[str] = None
    session_id: Optional[str] = None
    tier: Optional[str] = None
    stage_completions: Dict[Stage, float] = field(default_factory=dict)
    stage_enqueues: Dict[Stage, float] = field(default_factory=dict)
    queue_waits: Dict[Stage, float] = field(default_factory=dict)
    first_token_time: Optional[float] = None
    completion_time: Optional[float] = None
    slab: int = field(default=-1, repr=False, compare=False)

    @property
    def ttft(self) -> Optional[float]:
        """Seconds from arrival to first token (None if unfinished)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival

    @property
    def tpot(self) -> Optional[float]:
        """Mean seconds per generated token (None if unfinished)."""
        if self.completion_time is None or self.first_token_time is None:
            return None
        return (self.completion_time - self.first_token_time) \
            / max(self.decode_len, 1)


@dataclass
class ServingMetrics:
    """Aggregate results of one simulation run.

    Attributes:
        completed: Requests that finished decoding.
        offered: Requests injected.
        duration: Seconds from first arrival to last completion.
        throughput: Completed requests per second over ``duration``.
        mean_ttft / p99_ttft: TTFT statistics over completed requests.
        mean_tpot: Mean (completion - first token) / decode_len.
        utilization: Busy-time fraction per pre-decode resource over the
            run (group name -> [0, 1]); shows which tier the schedule
            actually saturates.
        records: Per-request lifecycles.
    """

    completed: int
    offered: int
    duration: float
    throughput: float
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    utilization: Dict[str, float] = field(default_factory=dict)
    records: List[RequestRecord] = field(repr=False, default_factory=list)


@dataclass(frozen=True)
class SLOTarget:
    """Per-request latency targets a served request must meet.

    Attributes:
        ttft: TTFT target in seconds (None = dimension unconstrained).
        tpot: TPOT target in seconds (None = dimension unconstrained).
    """

    ttft: Optional[float] = None
    tpot: Optional[float] = None

    def __post_init__(self) -> None:
        for name, value in (("ttft", self.ttft), ("tpot", self.tpot)):
            if value is not None and value <= 0:
                raise ConfigError(f"SLO {name} must be positive when set")

    def check(self, record: RequestRecord) -> Dict[str, Optional[bool]]:
        """Per-dimension verdict for one completed request.

        An unconstrained dimension verdicts None; an unfinished request
        fails every constrained dimension.
        """
        ttft_ok: Optional[bool] = None
        tpot_ok: Optional[bool] = None
        if self.ttft is not None:
            ttft_ok = record.ttft is not None and record.ttft <= self.ttft
        if self.tpot is not None:
            tpot_ok = record.tpot is not None and record.tpot <= self.tpot
        return {"ttft": ttft_ok, "tpot": tpot_ok,
                "joint": (None if ttft_ok is None and tpot_ok is None
                          else ttft_ok is not False and tpot_ok is not False)}


def _interpolated_percentile(sorted_values: Sequence[float],
                             fraction: float) -> float:
    """Linear-interpolated percentile over pre-sorted values.

    Raises:
        ConfigError: on an empty sample (degenerate runs must surface
            as configuration errors, not index errors).
    """
    if not sorted_values:
        raise ConfigError("cannot take a percentile of zero samples")
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError("percentile fraction must be in [0, 1]")
    rank = fraction * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) \
        + sorted_values[high] * weight


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every user got the same allocation, approaching ``1/n``
    as one user monopolizes it. An empty or all-zero sample scores
    0.0 (no allocation to be fair about).
    """
    total = float(sum(values))
    square_sum = float(sum(value * value for value in values))
    if not values or square_sum == 0.0:
        return 0.0
    return (total * total) / (len(values) * square_sum)


def _latency_summary(sorted_values: Sequence[float]) -> Dict[str, float]:
    return {
        "mean": sum(sorted_values) / len(sorted_values),
        "p50": _interpolated_percentile(sorted_values, 0.50),
        "p95": _interpolated_percentile(sorted_values, 0.95),
        "p99": _interpolated_percentile(sorted_values, 0.99),
    }


@dataclass(frozen=True)
class ServingReport:
    """Scenario-level outcome of replaying a trace through a schedule.

    The serializable artifact behind ``repro replay``: aggregates only
    (``records`` ride along for programmatic drill-down but are
    excluded from equality and from the :mod:`repro.config` envelope).

    Attributes:
        scenario: The trace's generating scenario name.
        offered / completed: Requests injected / finished.
        duration: Seconds from first arrival to last completion.
        throughput: Completed requests per second.
        slo: The targets attainment was measured against.
        slo_attainment: Fraction of completed requests meeting the
            ``ttft`` target, the ``tpot`` target, and both (``joint``).
            An unconstrained dimension counts as met.
        ttft / tpot: mean/p50/p95/p99 latency summaries (interpolated
            percentiles, seconds).
        queueing: Per-stage queue-wait breakdown (stage name ->
            mean/p95/max wait in seconds) over completed requests.
        utilization: Busy-time fraction per pre-decode resource.
        trace_metadata: The replayed trace's metadata, for provenance.
        tiers: Per-SLO-tier breakdown (tier name -> offered/completed
            counts, per-tier SLO attainment, p95 latencies, and the
            worst per-user TTFT p95 within the tier). Empty when the
            workload carried no identity, so anonymous runs compare
            equal to pre-identity reports.
        fairness: Cross-user fairness summary -- ``users`` and a
            Jain index over per-user completion counts
            (``jain_completions``, 1.0 = perfectly even). Empty when
            anonymous.
        records: Per-request lifecycles (not serialized, not compared).
    """

    scenario: str
    offered: int
    completed: int
    duration: float
    throughput: float
    slo: SLOTarget
    slo_attainment: Dict[str, float]
    ttft: Dict[str, float]
    tpot: Dict[str, float]
    queueing: Dict[str, Dict[str, float]]
    utilization: Dict[str, float]
    trace_metadata: Dict[str, Any] = field(default_factory=dict)
    tiers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    fairness: Dict[str, float] = field(default_factory=dict)
    records: List[RequestRecord] = field(default_factory=list,
                                         repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.completed < 0 or self.offered < 0:
            raise ConfigError("request counts must be non-negative")

    @property
    def completion_rate(self) -> float:
        """Fraction of offered requests that finished."""
        return self.completed / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class LiveSnapshot:
    """Running statistics of an in-flight engine, O(1) to take.

    Attributes:
        now: Current simulated time in seconds.
        offered: Requests submitted so far.
        completed: Requests finished so far.
        in_flight: Submitted but unfinished requests.
        throughput: Completions per second since the first arrival.
        mean_ttft / mean_tpot: Running means over completed requests
            (0.0 before the first completion).
    """

    now: float
    offered: int
    completed: int
    in_flight: int
    throughput: float
    mean_ttft: float
    mean_tpot: float


class MetricsAccumulator:
    """Folds request lifecycles into serving statistics incrementally.

    The engine calls :meth:`add` at submission and :meth:`finish` at
    completion; between those calls the accumulator can answer
    :meth:`snapshot` from running sums alone. :meth:`metrics` and
    :meth:`report` reproduce -- value for value -- the aggregates the
    pre-refactor batch simulator computed, so an open-loop replay
    through the engine stays bit-identical.

    Internally the final artifacts are built from **incremental
    reservoirs** fed at :meth:`finish` -- latency triples tagged with
    the submission index and per-stage wait lists -- rather than by
    re-walking every record's dicts at report time. The reproduced
    float arithmetic is order-exact: TTFT statistics sum over the
    sorted sample, while the TPOT mean sums in submission order
    (unsorted), exactly as the record-walking implementation did.
    """

    def __init__(self, schema: "RAGSchema") -> None:
        self._schema = schema
        self._records: List[RequestRecord] = []
        self._first_arrival: Optional[float] = None
        self._completed = 0
        self._ttft_sum = 0.0
        self._ttft_count = 0
        self._tpot_sum = 0.0
        self._last_completion = 0.0
        self._utilization_fn = None
        # id(record) -> submission index (records are held in
        # _records forever, so ids stay live and unique).
        self._index: Dict[int, int] = {}
        # (submission index, ttft, tpot) per completed-with-first-token
        # request, appended in completion order; submission indices are
        # unique ints, so sorting never compares the float fields.
        self._lat: List[tuple] = []
        # stage -> waits of completed requests, in completion order.
        self._stage_waits: Dict[Stage, List[float]] = {}
        # Identity reservoirs, fed only for records that carry
        # user/session/tier identity; all stay empty on anonymous
        # workloads so the anonymous report shape is untouched.
        self._tier_offered: Dict[str, int] = {}
        self._tier_completed: Dict[str, int] = {}
        # tier -> (submission index, ttft, tpot), completion order.
        self._tier_lat: Dict[str, List[tuple]] = {}
        self._user_ttfts: Dict[str, List[float]] = {}
        self._user_completed: Dict[str, int] = {}
        self._user_tier: Dict[str, str] = {}

    @staticmethod
    def _identity_tier(record: RequestRecord) -> Optional[str]:
        """The tier bucket a record reports under (None = anonymous)."""
        if record.tier is not None:
            return record.tier
        if record.user_id is not None or record.session_id is not None:
            return "(untiered)"
        return None

    # -- engine feed ---------------------------------------------------

    def add(self, record: RequestRecord) -> None:
        """Register a submitted request.

        Submission order is not guaranteed to be arrival order (an
        engine accepts any arrival at or after its simulated clock), so
        the earliest arrival is tracked as a running minimum rather
        than assumed to be the first record's.
        """
        self._index[id(record)] = len(self._records)
        self._records.append(record)
        if self._first_arrival is None \
                or record.arrival < self._first_arrival:
            self._first_arrival = record.arrival
        tier = self._identity_tier(record)
        if tier is not None:
            self._tier_offered[tier] = self._tier_offered.get(tier, 0) + 1

    def finish(self, record: RequestRecord) -> None:
        """Fold in one completed request (completion_time set).

        The record's latency and queue-wait values are captured into
        the reservoirs here; later mutation of a finished record does
        not alter subsequent reports.
        """
        self._completed += 1
        completion = record.completion_time
        if completion > self._last_completion:
            self._last_completion = completion
        tier = self._identity_tier(record)
        if tier is not None:
            self._tier_completed[tier] = \
                self._tier_completed.get(tier, 0) + 1
            user = record.user_id
            if user is not None:
                self._user_completed[user] = \
                    self._user_completed.get(user, 0) + 1
                self._user_tier[user] = tier
        first_token = record.first_token_time
        if first_token is not None:
            # Same arithmetic as the ttft/tpot properties, inlined:
            # finish() runs once per completion on the hot path.
            ttft = first_token - record.arrival
            decode_len = record.decode_len
            tpot = (completion - first_token) \
                / (decode_len if decode_len > 1 else 1)
            self._ttft_sum += ttft
            self._ttft_count += 1
            self._tpot_sum += tpot
            self._lat.append((self._index[id(record)], ttft, tpot))
            if tier is not None:
                entry = (self._index[id(record)], ttft, tpot)
                bucket = self._tier_lat.get(tier)
                if bucket is None:
                    self._tier_lat[tier] = [entry]
                else:
                    bucket.append(entry)
                if record.user_id is not None:
                    sample = self._user_ttfts.get(record.user_id)
                    if sample is None:
                        self._user_ttfts[record.user_id] = [ttft]
                    else:
                        sample.append(ttft)
            stage_waits = self._stage_waits
            for stage, wait in record.queue_waits.items():
                bucket = stage_waits.get(stage)
                if bucket is None:
                    stage_waits[stage] = [wait]
                else:
                    bucket.append(wait)

    # -- introspection -------------------------------------------------

    @property
    def offered(self) -> int:
        """Requests registered so far."""
        return len(self._records)

    @property
    def completed(self) -> int:
        """Requests finished so far."""
        return self._completed

    @property
    def records(self) -> List[RequestRecord]:
        """All registered records, in submission order."""
        return self._records

    def tier_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tier offered/completed counts so far, sorted by tier
        name (empty when the workload carries no identity)."""
        return {tier: {"offered": self._tier_offered.get(tier, 0),
                       "completed": self._tier_completed.get(tier, 0)}
                for tier in sorted(self._tier_offered)}

    def snapshot(self, now: float) -> LiveSnapshot:
        """Running statistics at simulated time ``now`` (O(1))."""
        elapsed = 0.0
        if self._first_arrival is not None:
            elapsed = max(now - self._first_arrival, 0.0)
        return LiveSnapshot(
            now=now,
            offered=self.offered,
            completed=self._completed,
            in_flight=self.offered - self._completed,
            throughput=self._completed / elapsed if elapsed > 0 else 0.0,
            mean_ttft=(self._ttft_sum / self._ttft_count
                       if self._ttft_count else 0.0),
            mean_tpot=(self._tpot_sum / self._ttft_count
                       if self._ttft_count else 0.0),
        )

    # -- final artifacts -----------------------------------------------

    def metrics(self,
                utilization_of: Optional[Dict[str, float]] = None,
                ) -> ServingMetrics:
        """The batch-run aggregate (pre-refactor ``ServingMetrics``).

        Args:
            utilization_of: Resource-name -> busy-seconds totals; the
                accumulator normalizes them by the run duration.
        """
        lat = self._lat
        if self._completed and lat:
            # finish() maintains the running max(completion) and add()
            # the running min(arrival); completions exist here, so
            # neither is stale.
            duration = max(self._last_completion - self._first_arrival,
                           1e-12)
            throughput = self._completed / duration
            ttfts = sorted(entry[1] for entry in lat)
            mean_ttft = sum(ttfts) / len(ttfts)
            # Same interpolated estimator as report()/latency summaries:
            # the one run must never emit two different p99s.
            p99 = _interpolated_percentile(ttfts, 0.99)
            # The TPOT mean sums in submission order, unsorted --
            # the float-op order the record-walking implementation
            # used (bit-identity pinned by tests).
            mean_tpot = sum(entry[2] for entry in sorted(lat)) / len(lat)
        else:
            duration = throughput = mean_ttft = p99 = mean_tpot = 0.0
        utilization = {}
        if duration > 0 and utilization_of:
            utilization = {name: min(busy / duration, 1.0)
                           for name, busy in utilization_of.items()}
        return ServingMetrics(
            completed=self._completed,
            offered=len(self._records),
            duration=duration,
            throughput=throughput,
            mean_ttft=mean_ttft,
            p99_ttft=p99,
            mean_tpot=mean_tpot,
            utilization=utilization,
            records=self._records,
        )

    def report(self, trace: "RequestTrace", slo: SLOTarget,
               utilization_of: Optional[Dict[str, float]] = None,
               ) -> ServingReport:
        """The trace-replay artifact (pre-refactor ``ServingReport``).

        Raises:
            ConfigError: when zero requests finished -- a degenerate run
                must surface as a configuration error, not bad math.
        """
        metrics = self.metrics(utilization_of)
        # The reservoir holds exactly the completed-with-first-token
        # requests; sorting by submission index restores the records
        # order the record-walking implementation iterated in.
        lat = sorted(self._lat)
        if not lat:
            raise ConfigError(
                "zero requests finished the replay; raise the horizon or "
                "lower the offered load before asking for a report")
        n = len(lat)
        ttfts = sorted(entry[1] for entry in lat)
        tpots = sorted(entry[2] for entry in lat)
        met_ttft = [slo.ttft is None or entry[1] <= slo.ttft
                    for entry in lat]
        met_tpot = [slo.tpot is None or entry[2] <= slo.tpot
                    for entry in lat]
        attainment = {
            "ttft": sum(met_ttft) / n,
            "tpot": sum(met_tpot) / n,
            "joint": sum(a and b for a, b in zip(met_ttft, met_tpot)) / n,
        }
        tiers = self._tier_sections(slo)
        fairness: Dict[str, float] = {}
        if self._user_completed:
            counts = [self._user_completed[user]
                      for user in sorted(self._user_completed)]
            fairness = {
                "users": float(len(counts)),
                "jain_completions": jain_index(counts),
            }
        queueing: Dict[str, Dict[str, float]] = {}
        stage_order = [stage for stage in pipeline_stages(self._schema)
                       if stage is not Stage.DECODE] + [Stage.DECODE]
        for stage in stage_order:
            bucket = self._stage_waits.get(stage)
            if not bucket:
                continue
            waits = sorted(bucket)
            queueing[stage.value] = {
                "mean_wait": sum(waits) / len(waits),
                "p95_wait": _interpolated_percentile(waits, 0.95),
                "max_wait": waits[-1],
            }
        return ServingReport(
            scenario=trace.scenario,
            offered=metrics.offered,
            completed=metrics.completed,
            duration=metrics.duration,
            throughput=metrics.throughput,
            slo=slo,
            slo_attainment=attainment,
            ttft=_latency_summary(ttfts),
            tpot=_latency_summary(tpots),
            queueing=queueing,
            utilization=dict(metrics.utilization),
            trace_metadata=dict(trace.metadata),
            tiers=tiers,
            fairness=fairness,
            records=metrics.records,
        )

    def _tier_sections(self, slo: SLOTarget) -> Dict[str, Dict[str, Any]]:
        """Per-tier report sections, sorted by tier name.

        Empty when no completed request carried identity. A tier's
        attainment/percentiles cover its completed-with-first-token
        requests; ``worst_user_p95_ttft`` is the maximum per-user TTFT
        p95 inside the tier (the user the tier is failing hardest).
        """
        sections: Dict[str, Dict[str, Any]] = {}
        for tier in sorted(self._tier_lat):
            entries = self._tier_lat[tier]
            count = len(entries)
            ttfts = sorted(entry[1] for entry in entries)
            tpots = sorted(entry[2] for entry in entries)
            met_ttft = [slo.ttft is None or entry[1] <= slo.ttft
                        for entry in entries]
            met_tpot = [slo.tpot is None or entry[2] <= slo.tpot
                        for entry in entries]
            users = sorted(user for user, user_tier
                           in self._user_tier.items() if user_tier == tier)
            worst_user_p95 = 0.0
            for user in users:
                sample = self._user_ttfts.get(user)
                if sample:
                    worst_user_p95 = max(
                        worst_user_p95,
                        _interpolated_percentile(sorted(sample), 0.95))
            sections[tier] = {
                "offered": self._tier_offered.get(tier, 0),
                "completed": self._tier_completed.get(tier, 0),
                "users": len(users),
                "slo_attainment": {
                    "ttft": sum(met_ttft) / count,
                    "tpot": sum(met_tpot) / count,
                    "joint": sum(a and b for a, b
                                 in zip(met_ttft, met_tpot)) / count,
                },
                "ttft_p95": _interpolated_percentile(ttfts, 0.95),
                "tpot_p95": _interpolated_percentile(tpots, 0.95),
                "worst_user_p95_ttft": worst_user_p95,
            }
        return sections
