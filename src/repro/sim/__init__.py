"""Request-level discrete-event serving simulation.

The analytical assembly (:mod:`repro.pipeline.assembly`) predicts
steady-state TTFT and QPS in closed form. This package simulates the
same deployment at request granularity -- arrivals, per-stage batching
queues, busy servers, continuous-batching decode -- so the closed-form
predictions can be validated and transient effects (bursts, queueing
delay, tail latency) can be studied.

The simulator consumes the same :class:`~repro.pipeline.Schedule` and
:class:`~repro.pipeline.RAGPerfModel` as the analytical path: stage
*service times* come from the calibrated cost models; the DES adds only
queueing and batching dynamics on top. Batching and admission are
pluggable policies (:mod:`repro.sim.policies`); workloads arrive as
:class:`~repro.workloads.traces.RequestTrace` scenarios, and a trace
replay yields a :class:`ServingReport` with SLO attainment, latency
percentiles and queueing breakdowns.
"""

from repro.sim.engine import EventQueue, Simulation
from repro.sim.policies import (
    ADMISSION_POLICIES,
    DISPATCH_POLICIES,
    AdmissionPolicy,
    DeadlineFlushPolicy,
    DispatchPolicy,
    FullBatchPolicy,
    GreedyAdmission,
    SizeCappedPolicy,
    TokenBudgetAdmission,
)
from repro.sim.serving import (
    RequestRecord,
    ServingMetrics,
    ServingReport,
    ServingSimulator,
    SLOTarget,
)

__all__ = [
    "EventQueue",
    "Simulation",
    "ServingSimulator",
    "ServingMetrics",
    "ServingReport",
    "SLOTarget",
    "RequestRecord",
    "DispatchPolicy",
    "DeadlineFlushPolicy",
    "FullBatchPolicy",
    "SizeCappedPolicy",
    "AdmissionPolicy",
    "GreedyAdmission",
    "TokenBudgetAdmission",
    "DISPATCH_POLICIES",
    "ADMISSION_POLICIES",
]
