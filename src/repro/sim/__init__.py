"""Request-level discrete-event serving simulation.

The analytical assembly (:mod:`repro.pipeline.assembly`) predicts
steady-state TTFT and QPS in closed form. This package simulates the
same deployment at request granularity -- arrivals, per-stage batching
queues, busy servers, continuous-batching decode -- so the closed-form
predictions can be validated and transient effects (bursts, queueing
delay, tail latency) can be studied.

The simulation consumes the same :class:`~repro.pipeline.Schedule` and
:class:`~repro.pipeline.RAGPerfModel` as the analytical path: stage
*service times* come from the calibrated cost models; the DES adds only
queueing and batching dynamics on top. The core is the incremental
:class:`ServingEngine` (explicit ``submit`` / ``step`` / ``drain``
lifecycle, running metrics, completion listeners); batching and
admission are pluggable policies (:mod:`repro.sim.policies`).
:class:`ServingSimulator` drives the engine open loop over a
:class:`~repro.workloads.traces.RequestTrace` and yields a
:class:`ServingReport` with SLO attainment, latency percentiles and
queueing breakdowns, while :mod:`repro.serve` feeds the same engine
from a live asyncio request stream.
"""

from repro.sim.autoscale import (
    AUTOSCALE_POLICIES,
    AutoscaleConfig,
    AutoscalePolicy,
    Autoscaler,
    FleetView,
    QueueDepthPolicy,
    ScalingEvent,
    SLOAttainmentPolicy,
    TargetUtilizationPolicy,
    autoscale_spec,
    parse_autoscale_spec,
    resolve_autoscale_policy,
)
from repro.sim.engine import EventQueue, ServingEngine, Simulation
from repro.sim.fleet import FleetEngine
from repro.sim.metrics import (
    LiveSnapshot,
    MetricsAccumulator,
    RequestRecord,
    ServingMetrics,
    ServingReport,
    SLOTarget,
    jain_index,
)
from repro.sim.policies import (
    ADMISSION_POLICIES,
    DISPATCH_POLICIES,
    AdmissionPolicy,
    DeadlineFlushPolicy,
    DispatchPolicy,
    FullBatchPolicy,
    GreedyAdmission,
    PriorityAdmission,
    SizeCappedPolicy,
    TokenBudgetAdmission,
    admission_spec,
    parse_admission_policy,
)
from repro.sim.routing import (
    ROUTING_POLICIES,
    JoinIdleQueueRouting,
    LeastInFlightRouting,
    PowerOfTwoChoicesRouting,
    ReplicaView,
    RoundRobinRouting,
    RoutingPolicy,
    SessionAffineRouting,
    WeightedQPSRouting,
    resolve_routing_policy,
)
from repro.sim.serving import ServingSimulator

__all__ = [
    "EventQueue",
    "Simulation",
    "ServingEngine",
    "FleetEngine",
    "ServingSimulator",
    "ServingMetrics",
    "ServingReport",
    "SLOTarget",
    "RequestRecord",
    "LiveSnapshot",
    "MetricsAccumulator",
    "jain_index",
    "DispatchPolicy",
    "DeadlineFlushPolicy",
    "FullBatchPolicy",
    "SizeCappedPolicy",
    "AdmissionPolicy",
    "GreedyAdmission",
    "TokenBudgetAdmission",
    "PriorityAdmission",
    "DISPATCH_POLICIES",
    "ADMISSION_POLICIES",
    "parse_admission_policy",
    "admission_spec",
    "RoutingPolicy",
    "ReplicaView",
    "RoundRobinRouting",
    "LeastInFlightRouting",
    "WeightedQPSRouting",
    "PowerOfTwoChoicesRouting",
    "JoinIdleQueueRouting",
    "SessionAffineRouting",
    "ROUTING_POLICIES",
    "resolve_routing_policy",
    "AutoscalePolicy",
    "TargetUtilizationPolicy",
    "QueueDepthPolicy",
    "SLOAttainmentPolicy",
    "AUTOSCALE_POLICIES",
    "resolve_autoscale_policy",
    "AutoscaleConfig",
    "parse_autoscale_spec",
    "autoscale_spec",
    "ScalingEvent",
    "FleetView",
    "Autoscaler",
]
