"""Request-level discrete-event serving simulation.

The analytical assembly (:mod:`repro.pipeline.assembly`) predicts
steady-state TTFT and QPS in closed form. This package simulates the
same deployment at request granularity -- arrivals, per-stage batching
queues, busy servers, continuous-batching decode -- so the closed-form
predictions can be validated and transient effects (bursts, queueing
delay, tail latency) can be studied.

The simulator consumes the same :class:`~repro.pipeline.Schedule` and
:class:`~repro.pipeline.RAGPerfModel` as the analytical path: stage
*service times* come from the calibrated cost models; the DES adds only
queueing and batching dynamics on top.
"""

from repro.sim.engine import EventQueue, Simulation
from repro.sim.serving import RequestRecord, ServingMetrics, ServingSimulator

__all__ = [
    "EventQueue",
    "Simulation",
    "ServingSimulator",
    "ServingMetrics",
    "RequestRecord",
]
