"""Discrete-event core and the incremental serving engine.

Two layers live here:

* :class:`Simulation` / :class:`EventQueue` -- the minimal DES kernel.
  Callbacks are scheduled at absolute times and executed in order; ties
  break by insertion order, which keeps runs deterministic. ``run`` can
  stop at a horizon and be resumed, so the same kernel drives both
  batch replays and incremental stepping.
* :class:`ServingEngine` -- the request-level serving network (batch
  stations time-multiplexing placement-group resources, a retrieval
  tier, a continuous-batching decode executor) with an **explicit
  lifecycle**: :meth:`~ServingEngine.submit` injects one request,
  :meth:`~ServingEngine.step` advances simulated time to a bound, and
  :meth:`~ServingEngine.drain` runs the network empty. Requests can be
  submitted *while* time advances, which is what turns the simulator
  from a closed-box trace replayer into the core of a live,
  socket-facing front-end (:mod:`repro.serve`).

:class:`~repro.sim.serving.ServingSimulator` remains the open-loop
driver over this engine: it submits a whole trace up front and drains,
reproducing the pre-refactor replay bit for bit (pinned by tests).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.pipeline.assembly import Schedule, derive_retrieval_servers
from repro.pipeline.stage_perf import RAGPerfModel
from repro.schema.stages import Stage, pipeline_stages
from repro.sim.metrics import (
    LiveSnapshot,
    MetricsAccumulator,
    RequestRecord,
    ServingMetrics,
    ServingReport,
    SLOTarget,
)
from repro.sim.policies import (
    AdmissionPolicy,
    DispatchPolicy,
    resolve_admission_policy,
    resolve_dispatch_policy,
)
from repro.workloads.traces import RequestTrace

#: An event callback receives the simulation so it can schedule more.
EventFn = Callable[["Simulation"], None]

#: Per-stage dispatch selection: one policy (or registry name) for all
#: stages, or a mapping from stage to policy/name.
DispatchSelection = Union[None, str, DispatchPolicy,
                          Mapping[Stage, Union[str, DispatchPolicy]]]


class EventQueue:
    """Priority queue of (time, sequence, callback) events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventFn]] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: EventFn) -> None:
        """Schedule a callback at an absolute time."""
        if time < 0:
            raise ConfigError("event time must be non-negative")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def pop(self) -> Tuple[float, EventFn]:
        """Remove and return the earliest (time, callback)."""
        time, _, callback = heapq.heappop(self._heap)
        return time, callback

    def peek_time(self) -> float:
        """The earliest scheduled time without removing the event."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulation:
    """Event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: EventFn) -> None:
        """Schedule a callback ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigError("delay must be non-negative")
        self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: EventFn) -> None:
        """Schedule a callback at an absolute time (>= now)."""
        if time < self._now:
            raise ConfigError("cannot schedule in the past")
        self._queue.push(time, callback)

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> None:
        """Process events until the queue drains or limits are reached.

        Args:
            until: Stop once the clock would pass this time (remaining
                events stay queued, keeping their insertion order so an
                incremental caller can resume without reordering ties).
            max_events: Safety valve against runaway simulations; a
                per-call budget, so a long-lived incremental engine can
                step indefinitely.

        Raises:
            ConfigError: when ``max_events`` is exhausted (almost always
                a modelling bug such as a self-rescheduling zero-delay
                event).
        """
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise ConfigError(
                    f"simulation exceeded {max_events} events; likely a "
                    f"zero-delay event loop"
                )
            if until is not None and self._queue.peek_time() > until:
                self._now = until
                return
            time, callback = self._queue.pop()
            self._now = time
            self._events_processed += 1
            processed += 1
            callback(self)
        if until is not None and until > self._now:
            self._now = until


class _Resource:
    """A set of chips (or servers) that one batch occupies at a time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy = False
        self.stations: List["_BatchStation"] = []
        self.busy_time = 0.0

    def release(self, sim: Simulation) -> None:
        self.busy = False
        for station in self.stations:
            station.try_dispatch(sim)
            if self.busy:
                break


class _BatchStation:
    """One pipeline stage batching requests on a shared resource.

    A batch occupies the resource for its *initiation interval*
    (``batch / throughput``): pipeline-parallel prefill overlaps
    consecutive batches, so the resource frees before the batch's full
    latency has elapsed; results are delivered at the latency.

    When to fire and how much to take are delegated to a
    :class:`~repro.sim.policies.DispatchPolicy` (already resolved
    against this stage's default deadline).
    """

    def __init__(self, stage: Stage, batch_size: int,
                 perf_fn: Callable[[int], "object"], resource: _Resource,
                 deliver: Callable[[Simulation, RequestRecord], None],
                 policy: DispatchPolicy) -> None:
        self.stage = stage
        self.batch_size = batch_size
        self.perf_fn = perf_fn
        self.resource = resource
        self.deliver = deliver
        self.policy = policy
        self.queue: List[RequestRecord] = []
        self._oldest_enqueue: Optional[float] = None
        self._flush_scheduled = False
        resource.stations.append(self)

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self.queue.append(record)
        record.stage_enqueues[self.stage] = sim.now
        if self._oldest_enqueue is None:
            self._oldest_enqueue = sim.now
        self.try_dispatch(sim)

    def try_dispatch(self, sim: Simulation) -> None:
        if self.resource.busy or not self.queue:
            return
        waited = sim.now - self._oldest_enqueue
        take = self.policy.take(len(self.queue), self.batch_size, waited)
        if take > 0:
            self._dispatch(sim, take)
        elif not self._flush_scheduled:
            delay = self.policy.flush_delay(waited)
            if delay is not None:
                self._flush_scheduled = True
                sim.schedule(max(delay, 0.0), self._flush)

    def _flush(self, sim: Simulation) -> None:
        # Force-dispatch the partial batch (float rounding must not turn
        # the staleness check into a zero-delay reschedule loop).
        self._flush_scheduled = False
        if not self.resource.busy and self.queue:
            self._dispatch(sim, self.policy.flush_take(len(self.queue),
                                                       self.batch_size))

    def _dispatch(self, sim: Simulation, take: int) -> None:
        batch = self.queue[:take]
        del self.queue[:take]
        for record in batch:
            enqueued = record.stage_enqueues.get(self.stage, sim.now)
            record.queue_waits[self.stage] = \
                record.queue_waits.get(self.stage, 0.0) \
                + (sim.now - enqueued)
        self._oldest_enqueue = sim.now if self.queue else None
        self.resource.busy = True
        perf = self.perf_fn(take)
        latency = perf.latency
        occupancy = min(take / perf.request_qps, latency)
        self.resource.busy_time += occupancy

        def free(sim_: Simulation) -> None:
            self.resource.release(sim_)

        def complete(sim_: Simulation, batch_=batch) -> None:
            for record in batch_:
                record.stage_completions[self.stage] = sim_.now
            for record in batch_:
                self.deliver(sim_, record)

        sim.schedule(occupancy, free)
        sim.schedule(latency, complete)


class _DecodeExecutor:
    """Continuous-batching decode: sequences join at step boundaries and
    leave after their own decode length (variable-length requests mix in
    the batch, which is why the paper reports worst-case TPOT).

    *Who* joins at a step boundary is the
    :class:`~repro.sim.policies.AdmissionPolicy`'s call.

    For iterative schemas (Case III), a sequence that hits one of its
    retrieval positions leaves the batch through ``retrieval_hook`` (to
    the retrieval + re-prefix stations) and re-joins via :meth:`accept`
    when the new context has been integrated.
    """

    def __init__(self, capacity: int, step_latency: float, decode_len: int,
                 on_complete: Callable[[Simulation, RequestRecord], None],
                 admission: AdmissionPolicy,
                 retrieval_hook: Optional[
                     Callable[[Simulation, RequestRecord], None]] = None,
                 positions_fn: Optional[
                     Callable[[RequestRecord], List[int]]] = None) -> None:
        self.capacity = capacity
        self.step_latency = step_latency
        self.decode_len = decode_len
        self.on_complete = on_complete
        self.admission = admission
        self.retrieval_hook = retrieval_hook
        self.positions_fn = positions_fn
        self.waiting: List[RequestRecord] = []
        self.remaining: List[List] = []  # [record, target]
        self.running = False
        self._progress: Dict[int, int] = {}
        self._positions: Dict[int, List[int]] = {}

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self.waiting.append(record)
        record.stage_enqueues[Stage.DECODE] = sim.now
        if not self.running:
            self.running = True
            sim.schedule(0.0, self._step)

    def _admit(self, now: float, record: RequestRecord) -> None:
        if record.request_id not in self._progress:
            self._progress[record.request_id] = 0
            if self.positions_fn is not None:
                self._positions[record.request_id] = list(
                    self.positions_fn(record))
            else:
                self._positions[record.request_id] = []
        enqueued = record.stage_enqueues.get(Stage.DECODE, now)
        record.queue_waits[Stage.DECODE] = \
            record.queue_waits.get(Stage.DECODE, 0.0) + (now - enqueued)
        target = record.decode_len or self.decode_len
        self.remaining.append([record, target])

    def _step(self, sim: Simulation) -> None:
        # Admit new sequences per the admission policy.
        if self.waiting:
            admitted = self.admission.admit(
                [record.decode_len or self.decode_len
                 for record in self.waiting],
                [entry[1] - self._progress[entry[0].request_id]
                 for entry in self.remaining],
                self.capacity)
            for _ in range(admitted):
                self._admit(sim.now, self.waiting.pop(0))
        if not self.remaining:
            self.running = False
            return

        def advance(sim_: Simulation) -> None:
            finished = []
            departing = []
            for entry in self.remaining:
                record = entry[0]
                self._progress[record.request_id] += 1
                done = self._progress[record.request_id]
                if done >= entry[1]:
                    finished.append(entry)
                    continue
                positions = self._positions[record.request_id]
                if positions and done >= positions[0]:
                    positions.pop(0)
                    departing.append(entry)
            for entry in finished:
                self.remaining.remove(entry)
                entry[0].completion_time = sim_.now
                self.on_complete(sim_, entry[0])
            for entry in departing:
                self.remaining.remove(entry)
                self.retrieval_hook(sim_, entry[0])
            self._step(sim_)

        sim.schedule(self.step_latency, advance)


#: A completion listener receives each finished request's record.
CompletionFn = Callable[[RequestRecord], None]


class ServingEngine:
    """Incremental, resumable request-level serving simulation.

    One engine owns one :class:`Simulation` and the station network for
    one schedule; its lifecycle is explicit so callers choose the
    driving mode:

    * **open loop** (what :class:`~repro.sim.serving.ServingSimulator`
      does): submit every request of a trace, then :meth:`drain`;
    * **incremental / live**: interleave :meth:`submit` and
      :meth:`step` as requests arrive in wall time, reading
      :meth:`snapshot` for running statistics and streaming completions
      through ``on_complete``.

    An engine is single-use: once drained (or stepped past a horizon),
    build a new one for the next run. Submissions need not arrive in
    timestamp order -- any arrival at or after the engine's current
    simulated time is schedulable -- but an arrival behind the clock
    is an out-of-order timestamp and raises
    :class:`~repro.errors.ConfigError` (the live front-end in
    :mod:`repro.serve` derives arrivals from a monotonic wall clock,
    so its streams always satisfy this).

    Args:
        perf_model: Calibrated stage cost models.
        schedule: The deployment under test.
        max_wait: Legacy global partial-batch deadline; fills in any
            dispatch policy whose own ``max_wait`` is unset (per-stage
            batch latency when both are None).
        seed: Seed for the iterative retrieval-position sampler.
        dispatch: Dispatch policy for the pre-decode stations -- a
            policy instance, a registry name, or a per-stage mapping
            (deadline flush when omitted).
        admission: Decode admission policy instance or registry name
            (greedy when omitted).
        on_complete: Optional listener invoked synchronously (during
            :meth:`step`/:meth:`drain`) with each finished request's
            :class:`~repro.sim.metrics.RequestRecord`.
    """

    def __init__(self, perf_model: RAGPerfModel, schedule: Schedule,
                 max_wait: Optional[float] = None, seed: int = 0,
                 dispatch: DispatchSelection = None,
                 admission: Union[None, str, AdmissionPolicy] = None,
                 on_complete: Optional[CompletionFn] = None) -> None:
        self._perf_model = perf_model
        self._schedule = schedule
        self._schema = perf_model.schema
        self._servers = schedule.retrieval_servers
        if self._servers is None:
            self._servers = derive_retrieval_servers(perf_model, schedule)
        self._max_wait = max_wait
        self._seed = seed
        self._dispatch = dispatch
        self._admission = resolve_admission_policy(admission)
        self._listeners: List[CompletionFn] = \
            [on_complete] if on_complete is not None else []
        self._sim = Simulation()
        self._accumulator = MetricsAccumulator(self._schema)
        self._next_id = 0
        self._stations: Dict[Stage, _BatchStation] = {}
        self._decode: Optional[_DecodeExecutor] = None
        self._build()

    # -- construction --------------------------------------------------

    def _stage_perf_fn(self, stage: Stage, resource_amount: int):
        plan = self._schedule.shard_plans.get(stage)

        def perf(batch: int):
            return self._perf_model.perf(stage, batch, resource_amount,
                                         plan=plan)

        return perf

    def _station_policy(self, stage: Stage,
                        default_wait: float) -> DispatchPolicy:
        """The stage's dispatch policy, resolved against its deadline.

        Deadline precedence: the policy's own ``max_wait``, then the
        engine-wide ``max_wait`` argument, then the stage's batch
        latency.
        """
        selection = self._dispatch
        if isinstance(selection, Mapping):
            selection = selection.get(stage)
        policy = resolve_dispatch_policy(selection)
        if self._max_wait is not None:
            default_wait = self._max_wait
        return policy.resolve(default_wait)

    def _build(self) -> None:
        schema = self._schema
        stages = [stage for stage in pipeline_stages(schema)
                  if stage is not Stage.DECODE]
        resources: Dict[int, _Resource] = {}
        for index, group in enumerate(self._schedule.groups):
            resources[index] = _Resource(
                name="+".join(str(s) for s in group.stages))
        retrieval_resource = _Resource("retrieval-servers")
        self._resources = [res for res in resources.values()
                           if "decode" not in res.name]
        if schema.has_retrieval:
            self._resources.append(retrieval_resource)

        # Build stations back to front so each knows its successor.
        deliver_next = self._enter_decode
        for stage in reversed(stages):
            if stage is Stage.RETRIEVAL:
                resource = retrieval_resource
                amount = self._servers
            else:
                group_index = next(
                    i for i, group in enumerate(self._schedule.groups)
                    if stage in group.stages)
                resource = resources[group_index]
                amount = self._schedule.groups[group_index].num_xpus
            batch = self._schedule.batches[stage]
            perf_fn = self._stage_perf_fn(stage, amount)
            station = _BatchStation(
                stage=stage, batch_size=batch, perf_fn=perf_fn,
                resource=resource,
                deliver=self._make_deliver(stage, deliver_next),
                policy=self._station_policy(stage, perf_fn(batch).latency))
            self._stations[stage] = station
            deliver_next = station.accept
        self._entry = deliver_next

        decode_group = next(group for group in self._schedule.groups
                            if Stage.DECODE in group.stages)
        decode_batch = self._schedule.batches[Stage.DECODE]
        decode_perf = self._perf_model.perf(Stage.DECODE, decode_batch,
                                            decode_group.num_xpus)
        step_latency = decode_perf.latency / schema.sequences.decode_len

        retrieval_hook = None
        positions_fn = None
        if schema.is_iterative:
            # Iterative retrieval + re-prefix stations: retrieval shares
            # the CPU servers with the initial retrieval; the re-prefix
            # time-multiplexes the prefix group's chips (§6.1 [III]).
            iter_batch = (self._schedule.iterative_batch
                          or self._schedule.batches[Stage.RETRIEVAL])
            prefix_index = next(
                i for i, group in enumerate(self._schedule.groups)
                if Stage.PREFIX in group.stages)
            retrieval_perf_fn = self._stage_perf_fn(Stage.RETRIEVAL,
                                                    self._servers)
            prefix_perf_fn = self._stage_perf_fn(
                Stage.PREFIX, self._schedule.groups[prefix_index].num_xpus)
            iter_prefix = _BatchStation(
                stage=Stage.PREFIX, batch_size=iter_batch,
                perf_fn=prefix_perf_fn, resource=resources[prefix_index],
                deliver=lambda sim, record: self._decode.accept(sim, record),
                policy=self._station_policy(
                    Stage.PREFIX, prefix_perf_fn(iter_batch).latency))
            iter_retrieval = _BatchStation(
                stage=Stage.RETRIEVAL, batch_size=iter_batch,
                perf_fn=retrieval_perf_fn, resource=retrieval_resource,
                deliver=iter_prefix.accept,
                policy=self._station_policy(
                    Stage.RETRIEVAL, retrieval_perf_fn(iter_batch).latency))
            retrieval_hook = iter_retrieval.accept
            retrievals = schema.retrieval_frequency - 1
            base_seed = self._seed

            def positions_fn(record: RequestRecord):
                from repro.workloads.sequences import (
                    sample_retrieval_positions,
                )
                length = record.decode_len or schema.sequences.decode_len
                count = min(retrievals, max(length - 1, 0))
                return sample_retrieval_positions(
                    length, count, seed=base_seed + record.request_id)

        self._decode = _DecodeExecutor(
            capacity=decode_batch, step_latency=step_latency,
            decode_len=schema.sequences.decode_len,
            on_complete=self._request_done,
            admission=self._admission,
            retrieval_hook=retrieval_hook,
            positions_fn=positions_fn)

    def _make_deliver(self, stage: Stage, downstream):
        def deliver(sim: Simulation, record: RequestRecord) -> None:
            if stage is Stage.PREFIX and record.first_token_time is None:
                record.first_token_time = sim.now
            downstream(sim, record)

        return deliver

    def _enter_decode(self, sim: Simulation, record: RequestRecord) -> None:
        self._decode.accept(sim, record)

    def _request_done(self, sim: Simulation, record: RequestRecord) -> None:
        self._accumulator.finish(record)
        for listener in self._listeners:
            listener(record)

    # -- lifecycle -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._sim.now

    @property
    def offered(self) -> int:
        """Requests submitted so far."""
        return self._accumulator.offered

    @property
    def completed(self) -> int:
        """Requests finished so far."""
        return self._accumulator.completed

    @property
    def in_flight(self) -> int:
        """Submitted but unfinished requests."""
        return self.offered - self.completed

    @property
    def records(self) -> List[RequestRecord]:
        """All submitted records, in submission order."""
        return self._accumulator.records

    @property
    def schema(self):
        """The workload schema this engine serves."""
        return self._schema

    @property
    def schedule(self) -> Schedule:
        """The deployment under test."""
        return self._schedule

    def add_listener(self, listener: CompletionFn) -> None:
        """Subscribe an additional completion listener."""
        self._listeners.append(listener)

    def submit(self, arrival: float, decode_len: Optional[int] = None,
               ) -> RequestRecord:
        """Inject one request at simulated time ``arrival``.

        Args:
            arrival: Arrival timestamp in simulated seconds. Must be
                finite, non-negative, and at or after the engine's
                current time (submissions need not be sorted among
                themselves -- metrics account for the earliest arrival
                regardless of submission order).
            decode_len: Tokens this request generates (the workload
                profile's decode length when None).

        Returns:
            The request's live :class:`RequestRecord` (its fields fill
            in as the simulation advances).

        Raises:
            ConfigError: on a timestamp behind the engine's clock or a
                non-positive decode length.
        """
        if not isinstance(arrival, (int, float)) \
                or not math.isfinite(arrival):
            raise ConfigError("arrival must be a finite number")
        if arrival < 0:
            raise ConfigError("arrival times must be non-negative")
        if arrival < self._sim.now:
            raise ConfigError(
                f"out-of-order timestamp: arrival {arrival} is in the "
                f"engine's past (simulated time {self._sim.now})")
        if decode_len is None:
            decode_len = self._schema.sequences.decode_len
        if decode_len <= 0:
            raise ConfigError("decode lengths must be positive")
        record = RequestRecord(request_id=self._next_id, arrival=arrival,
                               decode_len=int(decode_len))
        self._next_id += 1
        self._accumulator.add(record)
        self._sim.schedule_at(arrival,
                              lambda s, r=record: self._entry(s, r))
        return record

    def step(self, until: float) -> float:
        """Advance simulated time to ``until``, processing due events.

        Events scheduled past ``until`` stay queued (in order), so
        stepping is resumable; completions fire listeners synchronously.

        Returns:
            The engine's simulated time after the step (``until``).
        """
        if until < self._sim.now:
            raise ConfigError("cannot step backwards in time")
        self._sim.run(until=until)
        return self._sim.now

    def drain(self) -> float:
        """Run the network empty: process every remaining event.

        Returns:
            The simulated time of the last event.
        """
        self._sim.run()
        return self._sim.now

    # -- results -------------------------------------------------------

    def busy_times(self) -> Dict[str, float]:
        """Accumulated busy seconds per pre-decode resource name."""
        return {resource.name: resource.busy_time
                for resource in self._resources}

    def snapshot(self) -> LiveSnapshot:
        """Running statistics at the engine's current time (O(1))."""
        return self._accumulator.snapshot(self._sim.now)

    def metrics(self) -> ServingMetrics:
        """Aggregate metrics over everything submitted so far."""
        return self._accumulator.metrics(self.busy_times())

    def report(self, trace: RequestTrace,
               slo: Optional[SLOTarget] = None) -> ServingReport:
        """The trace-level :class:`ServingReport` for this run.

        Args:
            trace: The traffic that was (or would be) replayed; supplies
                scenario name and metadata. Use :meth:`recorded_trace`
                for a live run.
            slo: Latency targets (unconstrained when None).
        """
        return self._accumulator.report(trace, slo or SLOTarget(),
                                        self.busy_times())

    def recorded_trace(self, **metadata) -> RequestTrace:
        """The submissions observed so far, as a replayable trace.

        Every engine submission carries an explicit decode length, so
        the trace replays to the same per-request lifecycles. Records
        are emitted in arrival order (a stable sort, so same-instant
        submissions keep their tie-break rank); submission order may
        differ when the caller injected out-of-order timestamps.
        Metadata defaults to ``{"scenario": "live"}``; keyword
        arguments merge on top.

        Raises:
            ConfigError: when nothing has been submitted (an empty
                trace is not representable).
        """
        records = self._accumulator.records
        if not records:
            raise ConfigError("no submissions recorded; an empty trace "
                              "cannot be built")
        merged = {"scenario": "live"}
        merged.update(metadata)
        ordered = sorted(records, key=lambda r: r.arrival)
        return RequestTrace(
            arrivals=tuple(r.arrival for r in ordered),
            decode_lens=tuple(r.decode_len for r in ordered),
            metadata=merged,
        )
