"""Minimal discrete-event simulation core.

A :class:`Simulation` owns a time-ordered event queue; callbacks are
scheduled at absolute times and executed in order. Ties break by
insertion order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigError

#: An event callback receives the simulation so it can schedule more.
EventFn = Callable[["Simulation"], None]


class EventQueue:
    """Priority queue of (time, sequence, callback) events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventFn]] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: EventFn) -> None:
        """Schedule a callback at an absolute time."""
        if time < 0:
            raise ConfigError("event time must be non-negative")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def pop(self) -> Tuple[float, EventFn]:
        """Remove and return the earliest (time, callback)."""
        time, _, callback = heapq.heappop(self._heap)
        return time, callback

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulation:
    """Event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: EventFn) -> None:
        """Schedule a callback ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigError("delay must be non-negative")
        self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: EventFn) -> None:
        """Schedule a callback at an absolute time (>= now)."""
        if time < self._now:
            raise ConfigError("cannot schedule in the past")
        self._queue.push(time, callback)

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> None:
        """Process events until the queue drains or limits are reached.

        Args:
            until: Stop once the clock would pass this time (remaining
                events stay queued).
            max_events: Safety valve against runaway simulations.

        Raises:
            ConfigError: when ``max_events`` is exhausted (almost always
                a modelling bug such as a self-rescheduling zero-delay
                event).
        """
        while self._queue:
            if self._events_processed >= max_events:
                raise ConfigError(
                    f"simulation exceeded {max_events} events; likely a "
                    f"zero-delay event loop"
                )
            time, callback = self._queue.pop()
            if until is not None and time > until:
                self._queue.push(time, callback)
                self._now = until
                return
            self._now = time
            self._events_processed += 1
            callback(self)
