"""Discrete-event core and the incremental serving engine.

Two layers live here:

* :class:`Simulation` / :class:`EventQueue` -- the minimal DES kernel.
  Callbacks are scheduled at absolute times and executed in order; ties
  break by insertion order, which keeps runs deterministic. ``run`` can
  stop at a horizon and be resumed, so the same kernel drives both
  batch replays and incremental stepping.
* :class:`ServingEngine` -- the request-level serving network (batch
  stations time-multiplexing placement-group resources, a retrieval
  tier, a continuous-batching decode executor) with an **explicit
  lifecycle**: :meth:`~ServingEngine.submit` injects one request,
  :meth:`~ServingEngine.step` advances simulated time to a bound, and
  :meth:`~ServingEngine.drain` runs the network empty. Requests can be
  submitted *while* time advances, which is what turns the simulator
  from a closed-box trace replayer into the core of a live,
  socket-facing front-end (:mod:`repro.serve`).

:class:`~repro.sim.serving.ServingSimulator` remains the open-loop
driver over this engine: it submits a whole trace up front and drains,
reproducing the pre-refactor replay bit for bit (pinned by tests).

The engine has two wirings of the same network. The default **fast
path** (``fast=True``) runs on a slab-backed event queue (integer
event kinds dispatched through a handler table, timestamps drained in
batches), flat per-stage bookkeeping slabs instead of per-request
dicts, and a bucketized decode executor that is O(1) amortized per
step. The original closure-per-event wiring is kept as the **oracle**
(``fast=False``); parity tests pin the two to bit-identical
:class:`~repro.sim.metrics.ServingReport`\\ s on every registered
scenario. ``fast_forward=True`` additionally fluid-skips idle decode
boundaries (report-equal, not bit-identical, on ties).
"""

from __future__ import annotations

import heapq
import itertools
import math
from array import array
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ConfigError
from repro.pipeline.assembly import Schedule, derive_retrieval_servers
from repro.pipeline.stage_perf import RAGPerfModel
from repro.schema.stages import Stage, pipeline_stages
from repro.sim.metrics import (
    LiveSnapshot,
    MetricsAccumulator,
    RequestRecord,
    ServingMetrics,
    ServingReport,
    SLOTarget,
)
from repro.sim.policies import (
    AdmissionPolicy,
    DispatchPolicy,
    GreedyAdmission,
    TokenBudgetAdmission,
    resolve_admission_policy,
    resolve_dispatch_policy,
)
from repro.workloads.traces import Request, RequestTrace

#: An event callback receives the simulation so it can schedule more.
EventFn = Callable[["Simulation"], None]

#: Per-stage dispatch selection: one policy (or registry name) for all
#: stages, or a mapping from stage to policy/name.
DispatchSelection = Union[None, str, DispatchPolicy,
                          Mapping[Stage, Union[str, DispatchPolicy]]]


#: Kind 0 is the generic-callback event: its payload is an
#: :data:`EventFn` and dispatching it simply calls ``payload(sim)``.
#: This keeps the original closure API (and the oracle engine path)
#: running unchanged on the slab-backed queue.
KIND_CALLBACK = 0

_SLAB_GROW = 512


class EventQueue:
    """Slab-backed priority queue of kind-dispatched events.

    The heap itself holds only scalar ``(time, sequence, slot)``
    triples -- ties break by insertion order, which keeps runs
    deterministic. Per-event payloads live in preallocated parallel
    slabs (an integer ``kind`` array and an ``arg`` payload list)
    indexed by ``slot`` and recycled through a free list, so steady
    state pushes allocate nothing but the heap tuple.

    :meth:`push` keeps the historical closure API: it files the
    callback under :data:`KIND_CALLBACK`. Hot paths use
    :meth:`push_event` with an integer kind registered on the owning
    :class:`Simulation`, avoiding a closure per event.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        self._counter = itertools.count()
        self._kinds = array("i")
        self._args: List[Any] = []
        self._free: List[int] = []

    def _grow(self) -> None:
        base = len(self._args)
        self._kinds.extend([0] * _SLAB_GROW)
        self._args.extend([None] * _SLAB_GROW)
        self._free.extend(range(base + _SLAB_GROW - 1, base - 1, -1))

    def push_event(self, time: float, kind: int, arg: Any) -> None:
        """Schedule a kind-dispatched event at an absolute time."""
        if time < 0:
            raise ConfigError("event time must be non-negative")
        free = self._free
        if not free:
            self._grow()
        slot = free.pop()
        self._kinds[slot] = kind
        self._args[slot] = arg
        heapq.heappush(self._heap, (time, next(self._counter), slot))

    def push(self, time: float, callback: EventFn) -> None:
        """Schedule a callback at an absolute time."""
        self.push_event(time, KIND_CALLBACK, callback)

    def pop(self) -> Tuple[float, EventFn]:
        """Remove and return the earliest (time, callback).

        Raises:
            ConfigError: when the earliest event is kind-dispatched --
                those carry no standalone callback; they are drained by
                :meth:`Simulation.run` through its handler table.
        """
        time, _, slot = heapq.heappop(self._heap)
        kind = self._kinds[slot]
        arg = self._args[slot]
        self._args[slot] = None
        self._free.append(slot)
        if kind != KIND_CALLBACK:
            raise ConfigError(
                "kind-dispatched events drain through Simulation.run, "
                "not EventQueue.pop")
        return time, arg

    def peek_time(self) -> float:
        """The earliest scheduled time without removing the event.

        Raises:
            ConfigError: when the queue is empty -- there is no earliest
                event to peek at.
        """
        if not self._heap:
            raise ConfigError(
                "cannot peek an empty event queue: no events are "
                "scheduled")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


def _run_callback(sim: "Simulation", callback: EventFn) -> None:
    """Handler for :data:`KIND_CALLBACK`: the payload is the event."""
    callback(sim)


class Simulation:
    """Event loop with a monotonically advancing clock.

    Event dispatch goes through an integer-kind handler table: kind 0
    invokes the payload as a callback (the classic closure API), and
    components register additional kinds via :meth:`register_handler`
    so their hot paths schedule ``(kind, payload)`` pairs instead of
    constructing a closure per event.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._handlers: List[Callable[["Simulation", Any], None]] = \
            [_run_callback]

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    def register_handler(
            self, handler: Callable[["Simulation", Any], None]) -> int:
        """Register an event handler; returns its integer kind."""
        self._handlers.append(handler)
        return len(self._handlers) - 1

    def schedule(self, delay: float, callback: EventFn) -> None:
        """Schedule a callback ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigError("delay must be non-negative")
        self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: EventFn) -> None:
        """Schedule a callback at an absolute time (>= now)."""
        if time < self._now:
            raise ConfigError("cannot schedule in the past")
        self._queue.push(time, callback)

    def schedule_event(self, delay: float, kind: int, arg: Any) -> None:
        """Schedule a kind-dispatched event ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigError("delay must be non-negative")
        self._queue.push_event(self._now + delay, kind, arg)

    def schedule_event_at(self, time: float, kind: int, arg: Any) -> None:
        """Schedule a kind-dispatched event at an absolute time."""
        if time < self._now:
            raise ConfigError("cannot schedule in the past")
        self._queue.push_event(time, kind, arg)

    # simlint: hotpath
    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> None:
        """Process events until the queue drains or limits are reached.

        The loop drains in timestamp batches: the clock is pinned once
        per distinct time and every event sharing it (including
        zero-delay events a handler pushes mid-batch, which take higher
        sequence numbers) runs in one inner pass -- same order the
        per-event loop produced, with one heap inspection per batch
        instead of per event.

        Args:
            until: Stop once the clock would pass this time (remaining
                events stay queued, keeping their insertion order so an
                incremental caller can resume without reordering ties).
            max_events: Safety valve against runaway simulations; a
                per-call budget, so a long-lived incremental engine can
                step indefinitely.

        Raises:
            ConfigError: when ``max_events`` is exhausted (almost always
                a modelling bug such as a self-rescheduling zero-delay
                event).
        """
        queue = self._queue
        heap = queue._heap
        kinds = queue._kinds
        args = queue._args
        free = queue._free
        handlers = self._handlers
        heappop = heapq.heappop
        processed = 0
        while heap:
            time = heap[0][0]
            if until is not None and time > until:
                self._now = until
                return
            self._now = time
            while heap and heap[0][0] == time:
                if processed >= max_events:
                    raise ConfigError(
                        f"simulation exceeded {max_events} events; "
                        f"likely a zero-delay event loop")
                slot = heappop(heap)[2]
                kind = kinds[slot]
                arg = args[slot]
                args[slot] = None
                free.append(slot)
                self._events_processed += 1
                processed += 1
                handlers[kind](self, arg)
        if until is not None and until > self._now:
            self._now = until


class _Resource:
    """A set of chips (or servers) that one batch occupies at a time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy = False
        # _BatchStation or _FastBatchStation; both expose try_dispatch.
        self.stations: List[Any] = []
        self.busy_time = 0.0

    def release(self, sim: Simulation) -> None:
        self.busy = False
        for station in self.stations:
            station.try_dispatch(sim)
            if self.busy:
                break


class _BatchStation:
    """One pipeline stage batching requests on a shared resource.

    A batch occupies the resource for its *initiation interval*
    (``batch / throughput``): pipeline-parallel prefill overlaps
    consecutive batches, so the resource frees before the batch's full
    latency has elapsed; results are delivered at the latency.

    When to fire and how much to take are delegated to a
    :class:`~repro.sim.policies.DispatchPolicy` (already resolved
    against this stage's default deadline).
    """

    def __init__(self, stage: Stage, batch_size: int,
                 perf_fn: Callable[[int], "object"], resource: _Resource,
                 deliver: Callable[[Simulation, RequestRecord], None],
                 policy: DispatchPolicy) -> None:
        self.stage = stage
        self.batch_size = batch_size
        self.perf_fn = perf_fn
        self.resource = resource
        self.deliver = deliver
        self.policy = policy
        self.queue: List[RequestRecord] = []
        self._oldest_enqueue: Optional[float] = None
        self._flush_scheduled = False
        resource.stations.append(self)

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self.queue.append(record)
        record.stage_enqueues[self.stage] = sim.now
        if self._oldest_enqueue is None:
            self._oldest_enqueue = sim.now
        self.try_dispatch(sim)

    def try_dispatch(self, sim: Simulation) -> None:
        if self.resource.busy or not self.queue:
            return
        waited = sim.now - self._oldest_enqueue
        take = self.policy.take(len(self.queue), self.batch_size, waited)
        if take > 0:
            self._dispatch(sim, take)
        elif not self._flush_scheduled:
            delay = self.policy.flush_delay(waited)
            if delay is not None:
                self._flush_scheduled = True
                sim.schedule(max(delay, 0.0), self._flush)

    def _flush(self, sim: Simulation) -> None:
        # Force-dispatch the partial batch (float rounding must not turn
        # the staleness check into a zero-delay reschedule loop).
        self._flush_scheduled = False
        if not self.resource.busy and self.queue:
            self._dispatch(sim, self.policy.flush_take(len(self.queue),
                                                       self.batch_size))

    def _dispatch(self, sim: Simulation, take: int) -> None:
        batch = self.queue[:take]
        del self.queue[:take]
        for record in batch:
            enqueued = record.stage_enqueues.get(self.stage, sim.now)
            record.queue_waits[self.stage] = \
                record.queue_waits.get(self.stage, 0.0) \
                + (sim.now - enqueued)
        self._oldest_enqueue = sim.now if self.queue else None
        self.resource.busy = True
        perf = self.perf_fn(take)
        latency = perf.latency
        occupancy = min(take / perf.request_qps, latency)
        self.resource.busy_time += occupancy

        def free(sim_: Simulation) -> None:
            self.resource.release(sim_)

        def complete(sim_: Simulation, batch_=batch) -> None:
            for record in batch_:
                record.stage_completions[self.stage] = sim_.now
            for record in batch_:
                self.deliver(sim_, record)

        sim.schedule(occupancy, free)
        sim.schedule(latency, complete)


class _DecodeExecutor:
    """Continuous-batching decode: sequences join at step boundaries and
    leave after their own decode length (variable-length requests mix in
    the batch, which is why the paper reports worst-case TPOT).

    *Who* joins at a step boundary is the
    :class:`~repro.sim.policies.AdmissionPolicy`'s call.

    For iterative schemas (Case III), a sequence that hits one of its
    retrieval positions leaves the batch through ``retrieval_hook`` (to
    the retrieval + re-prefix stations) and re-joins via :meth:`accept`
    when the new context has been integrated.
    """

    def __init__(self, capacity: int, step_latency: float, decode_len: int,
                 on_complete: Callable[[Simulation, RequestRecord], None],
                 admission: AdmissionPolicy,
                 retrieval_hook: Optional[
                     Callable[[Simulation, RequestRecord], None]] = None,
                 positions_fn: Optional[
                     Callable[[RequestRecord], List[int]]] = None) -> None:
        self.capacity = capacity
        self.step_latency = step_latency
        self.decode_len = decode_len
        self.on_complete = on_complete
        self.admission = admission
        self.retrieval_hook = retrieval_hook
        self.positions_fn = positions_fn
        self.waiting: List[RequestRecord] = []
        self.remaining: List[List] = []  # [record, target]
        self.running = False
        self._progress: Dict[int, int] = {}
        self._positions: Dict[int, List[int]] = {}
        # Priority-aware policies reorder the waiting queue at accept;
        # stock policies keep the exact historical append (bit-identity
        # with pre-priority traces).
        self._reorders = admission.reorders_waiting
        self._waiting_prio: List[int] = []

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        if self._reorders:
            # Stable insert: higher rank first, FIFO within a rank.
            rank = self.admission.priority(record)
            prio = self._waiting_prio
            idx = len(prio)
            while idx > 0 and prio[idx - 1] < rank:
                idx -= 1
            self.waiting.insert(idx, record)
            prio.insert(idx, rank)
        else:
            self.waiting.append(record)
        record.stage_enqueues[Stage.DECODE] = sim.now
        if not self.running:
            self.running = True
            sim.schedule(0.0, self._step)

    def _admit(self, now: float, record: RequestRecord) -> None:
        if record.request_id not in self._progress:
            self._progress[record.request_id] = 0
            if self.positions_fn is not None:
                self._positions[record.request_id] = list(
                    self.positions_fn(record))
            else:
                self._positions[record.request_id] = []
        enqueued = record.stage_enqueues.get(Stage.DECODE, now)
        record.queue_waits[Stage.DECODE] = \
            record.queue_waits.get(Stage.DECODE, 0.0) + (now - enqueued)
        target = record.decode_len or self.decode_len
        self.remaining.append([record, target])

    def _step(self, sim: Simulation) -> None:
        # Admit new sequences per the admission policy.
        if self.waiting:
            admitted = self.admission.admit(
                [record.decode_len or self.decode_len
                 for record in self.waiting],
                [entry[1] - self._progress[entry[0].request_id]
                 for entry in self.remaining],
                self.capacity)
            if self._reorders:
                del self._waiting_prio[:admitted]
            for _ in range(admitted):
                self._admit(sim.now, self.waiting.pop(0))
        if not self.remaining:
            self.running = False
            return

        def advance(sim_: Simulation) -> None:
            finished = []
            departing = []
            for entry in self.remaining:
                record = entry[0]
                self._progress[record.request_id] += 1
                done = self._progress[record.request_id]
                if done >= entry[1]:
                    finished.append(entry)
                    continue
                positions = self._positions[record.request_id]
                if positions and done >= positions[0]:
                    positions.pop(0)
                    departing.append(entry)
            for entry in finished:
                self.remaining.remove(entry)
                entry[0].completion_time = sim_.now
                self.on_complete(sim_, entry[0])
            for entry in departing:
                self.remaining.remove(entry)
                self.retrieval_hook(sim_, entry[0])
            self._step(sim_)

        sim.schedule(self.step_latency, advance)


def _release_resource(sim: Simulation, resource: _Resource) -> None:
    """Handler for the fast path's resource-free events."""
    resource.release(sim)


def _complete_batch(sim: Simulation, payload: Tuple) -> None:
    """Handler for the fast path's batch-completion events."""
    payload[0]._complete(sim, payload[1])


def _flush_station(sim: Simulation, station: "_FastBatchStation") -> None:
    """Handler for the fast path's partial-batch flush events."""
    station._flush(sim)


class _FastBatchStation:
    """Kind-dispatched twin of :class:`_BatchStation`.

    Makes the same decisions in the same order (pinned by parity
    tests); the differences are mechanical: free/complete/flush events
    are scheduled through integer kinds instead of per-dispatch
    closures, and per-request bookkeeping writes the engine's flat
    per-stage slabs (NaN = untouched) instead of per-record dicts.
    """

    __slots__ = ("stage", "batch_size", "perf_fn", "resource", "policy",
                 "queue", "_oldest_enqueue", "_flush_scheduled", "_eng",
                 "_si", "_enq", "_comp", "_wait", "_n", "_downstream",
                 "_sets_first_token")

    def __init__(self, stage: Stage, batch_size: int,
                 perf_fn: Callable[[int], "object"], resource: _Resource,
                 engine: "ServingEngine",
                 downstream: Callable[[Simulation, RequestRecord], None],
                 policy: DispatchPolicy, sets_first_token: bool) -> None:
        self.stage = stage
        self.batch_size = batch_size
        self.perf_fn = perf_fn
        self.resource = resource
        self.policy = policy
        self.queue: List[RequestRecord] = []
        self._oldest_enqueue: Optional[float] = None
        self._flush_scheduled = False
        self._eng = engine
        self._si = engine._stage_slot[stage]
        # The slab lists are extended in place and never reassigned, so
        # stations can hold direct references (one attribute load per
        # hot-path touch instead of two).
        self._enq = engine._slab_enq
        self._comp = engine._slab_comp
        self._wait = engine._slab_wait
        self._n = engine._nstages
        self._downstream = downstream
        self._sets_first_token = sets_first_token
        resource.stations.append(self)

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self.queue.append(record)
        self._enq[record.slab * self._n + self._si] = sim.now
        if self._oldest_enqueue is None:
            self._oldest_enqueue = sim.now
        self.try_dispatch(sim)

    def try_dispatch(self, sim: Simulation) -> None:
        if self.resource.busy or not self.queue:
            return
        waited = sim.now - self._oldest_enqueue
        take = self.policy.take(len(self.queue), self.batch_size, waited)
        if take > 0:
            self._dispatch(sim, take)
        elif not self._flush_scheduled:
            delay = self.policy.flush_delay(waited)
            if delay is not None:
                self._flush_scheduled = True
                sim.schedule_event(max(delay, 0.0), self._eng._k_flush,
                                   self)

    def _flush(self, sim: Simulation) -> None:
        # Force-dispatch the partial batch (float rounding must not turn
        # the staleness check into a zero-delay reschedule loop).
        self._flush_scheduled = False
        if not self.resource.busy and self.queue:
            self._dispatch(sim, self.policy.flush_take(len(self.queue),
                                                       self.batch_size))

    # simlint: hotpath
    def _dispatch(self, sim: Simulation, take: int) -> None:
        batch = self.queue[:take]
        del self.queue[:take]
        now = sim.now
        eng = self._eng
        n = self._n
        si = self._si
        enq = self._enq
        wait = self._wait
        for record in batch:
            i = record.slab * n + si
            prev = wait[i]
            delta = now - enq[i]
            wait[i] = delta if prev != prev else prev + delta
        self._oldest_enqueue = now if self.queue else None
        self.resource.busy = True
        perf = self.perf_fn(take)
        latency = perf.latency
        occupancy = take / perf.request_qps
        if occupancy > latency:
            occupancy = latency
        self.resource.busy_time += occupancy
        sim.schedule_event(occupancy, eng._k_free, self.resource)
        sim.schedule_event(latency, eng._k_complete, (self, batch))

    # simlint: hotpath
    def _complete(self, sim: Simulation,
                  batch: List[RequestRecord]) -> None:
        now = sim.now
        n = self._n
        si = self._si
        comp = self._comp
        for record in batch:
            comp[record.slab * n + si] = now
        downstream = self._downstream
        if self._sets_first_token:
            for record in batch:
                if record.first_token_time is None:
                    record.first_token_time = now
                downstream(sim, record)
        else:
            for record in batch:
                downstream(sim, record)


class _FastDecodeExecutor:
    """Bucketized continuous-batching decode -- the fast path's core.

    Numerically and order-identical to :class:`_DecodeExecutor`
    (pinned by parity tests) but O(1) amortized per step instead of
    O(batch):

    * Each live sequence's next interesting step (finish, or departure
      to iterative retrieval) is computed once at admission and the
      entry is filed in a per-step *bucket*; the advance event touches
      only the bucket due at that step instead of walking the whole
      batch.
    * Step-boundary times are produced by replaying ``t +=
      step_latency`` additions one at a time, exactly the float
      sequence the oracle's event chain produces, so timestamps match
      bit for bit.
    * Admission inputs are reconstructed arithmetically
      (``remaining(s) = target + base - s``; the summed token debt is
      an O(1) running counter), with closed-form fast paths for the
      stock greedy / token-budget policies and an exact
      materialized-list fallback for custom policies.

    ``fast_forward`` adds a fluid skip: with nothing waiting, the next
    advance jumps straight to the earliest bucket instead of visiting
    every boundary in between. Timestamps still come from replayed
    additions; only an arrival landing *exactly* on a skipped boundary
    can order differently, so its contract is report equality on
    sparse traces rather than bit identity (covered by test).
    """

    def __init__(self, capacity: int, step_latency: float,
                 decode_len: int,
                 on_complete: Callable[[Simulation, RequestRecord], None],
                 admission: AdmissionPolicy, engine: "ServingEngine",
                 retrieval_hook: Optional[
                     Callable[[Simulation, RequestRecord], None]] = None,
                 positions_fn: Optional[
                     Callable[[RequestRecord], List[int]]] = None,
                 fast_forward: bool = False) -> None:
        self._q = engine._sim._queue  # direct pushes on the hot path
        self.capacity = capacity
        self.step_latency = step_latency
        self.decode_len = decode_len
        self.on_complete = on_complete
        self.admission = admission
        self.retrieval_hook = retrieval_hook
        self.positions_fn = positions_fn
        self.running = False
        self._eng = engine
        self._si = engine._stage_slot[Stage.DECODE]
        self._enq = engine._slab_enq
        self._wait = engine._slab_wait
        self._n = engine._nstages
        self._fast_forward = fast_forward
        # Progress/position bookkeeping only matters when requests can
        # leave decode for iterative retrieval and come back; the plain
        # pipeline skips those dict writes per request.
        self._track = retrieval_hook is not None or positions_fn is not None
        self.waiting: Deque[RequestRecord] = deque()
        self._waiting_lens: Deque[int] = deque()
        # serial -> [record, target, base, serial, positions]; dict
        # insertion order == admission order == the oracle's
        # remaining-list scan order.
        self._live: Dict[int, list] = {}
        self._serial = 0
        self._buckets: Dict[int, list] = {}
        self._tb_sum = 0  # sum(target + base) over live entries
        self._step_index = 0  # step boundary the clock last crossed
        self._boundary_time = 0.0  # sim time of that boundary
        self._adv_step = 0  # boundary the pending advance targets
        self._gen = 0  # generation counter invalidating stale advances
        self._skipping = False
        self._progress: Dict[int, int] = {}
        self._positions: Dict[int, List[int]] = {}
        self._greedy = type(admission) is GreedyAdmission
        self._budget = admission \
            if type(admission) is TokenBudgetAdmission else None
        # Same reordering contract as the oracle executor: only
        # priority-aware policies pay the insert; stock policies keep
        # the plain appends on the hot path.
        self._reorders = admission.reorders_waiting
        self._waiting_prio: Deque[int] = deque()
        self._fin: list = []  # reusable per-event scratch buffers
        self._dep: list = []

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self._enq[record.slab * self._n + self._si] = sim.now
        if self._reorders:
            # Stable insert mirroring _DecodeExecutor.accept: higher
            # rank first, FIFO within a rank, lens kept parallel.
            rank = self.admission.priority(record)
            prio = self._waiting_prio
            idx = len(prio)
            while idx > 0 and prio[idx - 1] < rank:
                idx -= 1
            self.waiting.insert(idx, record)
            self._waiting_lens.insert(
                idx, record.decode_len or self.decode_len)
            prio.insert(idx, rank)
        else:
            self.waiting.append(record)
            self._waiting_lens.append(record.decode_len or self.decode_len)
        if not self.running:
            self.running = True
            self._gen += 1
            self._skipping = False
            sim.schedule_event(0.0, self._eng._k_kick, self._gen)
        elif self._skipping:
            # A fluid skip is in flight but new work arrived: invalidate
            # it (generation bump) and advance at the first boundary at
            # or after now, replaying the additions the oracle's event
            # chain would have produced up to that point.
            self._gen += 1
            self._skipping = False
            sl = self.step_latency
            t = self._boundary_time
            step = self._step_index
            now = sim.now
            while True:
                t += sl
                step += 1
                if t >= now:
                    break
            self._adv_step = step
            sim.schedule_event_at(t, self._eng._k_adv, self._gen)

    def _on_kick(self, sim: Simulation, gen: int) -> None:
        """Handler for the idle -> running transition event."""
        if gen != self._gen:
            return
        self._boundary_time = sim.now
        self._boundary(sim)

    # simlint: hotpath
    def _on_adv(self, sim: Simulation, gen: int) -> None:
        """Handler for a step-boundary advance event.

        Entries land in their bucket exactly at their precomputed
        finish-or-depart step, so every bucketed entry leaves the
        batch here; finishes resolve before departures, matching the
        oracle's scan order.
        """
        if gen != self._gen:
            return
        s = self._adv_step
        self._step_index = s
        self._boundary_time = sim.now
        bucket = self._buckets.pop(s, None)
        if bucket is not None:
            fin = self._fin
            dep = self._dep
            for entry in bucket:
                if s - entry[2] >= entry[1]:
                    fin.append(entry)
                else:
                    del entry[4][0]
                    dep.append(entry)
            if fin:
                live = self._live
                progress = self._progress
                track = self._track
                now = sim.now
                on_complete = self.on_complete
                for entry in fin:
                    del live[entry[3]]
                    self._tb_sum -= entry[1] + entry[2]
                    record = entry[0]
                    if track:
                        progress[record.request_id] = s - entry[2]
                    record.completion_time = now
                    on_complete(sim, record)
                del fin[:]
            if dep:
                live = self._live
                progress = self._progress
                hook = self.retrieval_hook
                for entry in dep:
                    del live[entry[3]]
                    self._tb_sum -= entry[1] + entry[2]
                    progress[entry[0].request_id] = s - entry[2]
                    hook(sim, entry[0])
                del dep[:]
        if self.waiting:
            self._boundary(sim)
            return
        if not self._live:
            self.running = False
            return
        # Nothing to admit: schedule the next advance inline, pushing
        # the event straight into the queue slabs (the scheduling-call
        # chain is pure overhead at one event per decode step).
        k = 1
        if self._fast_forward:
            k = min(self._buckets) - s
            self._skipping = k > 1
        sl = self.step_latency
        t = sim.now
        target = s + k
        while k > 0:
            t += sl
            k -= 1
        self._adv_step = target
        q = self._q
        free = q._free
        if not free:
            q._grow()
        slot = free.pop()
        q._kinds[slot] = self._eng._k_adv
        q._args[slot] = self._gen
        heapq.heappush(q._heap, (t, next(q._counter), slot))

    def _remaining(self, s: int) -> List[int]:
        """Materialized remaining-token list, in admission order."""
        return [entry[1] + entry[2] - s for entry in self._live.values()]

    def _boundary(self, sim: Simulation) -> None:
        """Admit waiting work at boundary ``s`` and schedule the next
        advance (replicating the oracle's ``_step``)."""
        s = self._step_index
        waiting = self.waiting
        if waiting:
            lens = self._waiting_lens
            capacity = self.capacity
            live_count = len(self._live)
            if self._greedy:
                admitted = capacity - live_count
                if len(waiting) < admitted:
                    admitted = len(waiting)
                if admitted < 0:
                    admitted = 0
            elif self._budget is not None:
                policy = self._budget
                budget = policy.max_tokens
                if lens[0] > budget:
                    # Delegate to the real policy so the head-of-line
                    # overflow raises its exact ConfigError.
                    policy.admit(list(lens), self._remaining(s), capacity)
                slots = capacity - live_count
                debt = self._tb_sum - live_count * s
                admitted = 0
                for length in lens:
                    if admitted >= slots or debt + length > budget:
                        break
                    debt += length
                    admitted += 1
            else:
                admitted = self.admission.admit(
                    list(lens), self._remaining(s), capacity)
            now = sim.now
            if self._reorders:
                prio = self._waiting_prio
                for _ in range(admitted):
                    prio.popleft()
            for _ in range(admitted):
                self._admit(now, s, waiting.popleft(), lens.popleft())
        if not self._live:
            self.running = False
            return
        k = 1
        if self._fast_forward and not waiting:
            k = min(self._buckets) - s
        self._skipping = k > 1
        sl = self.step_latency
        t = self._boundary_time
        target = s + k
        while k > 0:
            t += sl
            k -= 1
        self._adv_step = target
        sim.schedule_event_at(t, self._eng._k_adv, self._gen)

    def _admit(self, now: float, s: int, record: RequestRecord,
               length: int) -> None:
        if self._track:
            rid = record.request_id
            prog = self._progress.get(rid)
            if prog is None:
                prog = 0
                self._progress[rid] = 0
                if self.positions_fn is not None:
                    positions = list(self.positions_fn(record))
                else:
                    positions = []
                self._positions[rid] = positions
            else:
                positions = self._positions[rid]
        else:
            prog = 0
            positions = ()
        i = record.slab * self._n + self._si
        wait = self._wait
        prev = wait[i]
        delta = now - self._enq[i]
        wait[i] = delta if prev != prev else prev + delta
        base = s - prog
        k_evt = length - prog
        if positions:
            k_dep = positions[0] - prog
            if k_dep < 1:
                k_dep = 1
            if k_dep < k_evt:
                k_evt = k_dep
        serial = self._serial
        self._serial = serial + 1
        entry = [record, length, base, serial, positions]
        self._live[serial] = entry
        self._tb_sum += length + base
        bucket = self._buckets.get(s + k_evt)
        if bucket is None:
            self._buckets[s + k_evt] = [entry]
        else:
            bucket.append(entry)


#: A completion listener receives each finished request's record.
CompletionFn = Callable[[RequestRecord], None]


class ServingEngine:
    """Incremental, resumable request-level serving simulation.

    One engine owns one :class:`Simulation` and the station network for
    one schedule; its lifecycle is explicit so callers choose the
    driving mode:

    * **open loop** (what :class:`~repro.sim.serving.ServingSimulator`
      does): submit every request of a trace, then :meth:`drain`;
    * **incremental / live**: interleave :meth:`submit` and
      :meth:`step` as requests arrive in wall time, reading
      :meth:`snapshot` for running statistics and streaming completions
      through ``on_complete``.

    An engine is single-use: once drained (or stepped past a horizon),
    build a new one for the next run. Submissions need not arrive in
    timestamp order -- any arrival at or after the engine's current
    simulated time is schedulable -- but an arrival behind the clock
    is an out-of-order timestamp and raises
    :class:`~repro.errors.ConfigError` (the live front-end in
    :mod:`repro.serve` derives arrivals from a monotonic wall clock,
    so its streams always satisfy this).

    Args:
        perf_model: Calibrated stage cost models.
        schedule: The deployment under test.
        max_wait: Legacy global partial-batch deadline; fills in any
            dispatch policy whose own ``max_wait`` is unset (per-stage
            batch latency when both are None).
        seed: Seed for the iterative retrieval-position sampler.
        dispatch: Dispatch policy for the pre-decode stations -- a
            policy instance, a registry name, or a per-stage mapping
            (deadline flush when omitted).
        admission: Decode admission policy instance or registry name
            (greedy when omitted).
        on_complete: Optional listener invoked synchronously (during
            :meth:`step`/:meth:`drain`) with each finished request's
            :class:`~repro.sim.metrics.RequestRecord`.
        fast: Use the slab-backed hot path (the default). ``False``
            selects the original closure-per-event network, kept as the
            bit-identical oracle the parity tests compare against.
        fast_forward: Fluid-skip idle decode boundaries (requires
            ``fast``). Reports stay equal on sparse traces, but exact
            arrival-on-boundary ties may order differently, so this is
            off by default.
    """

    def __init__(self, perf_model: RAGPerfModel, schedule: Schedule,
                 max_wait: Optional[float] = None, seed: int = 0,
                 dispatch: DispatchSelection = None,
                 admission: Union[None, str, AdmissionPolicy] = None,
                 on_complete: Optional[CompletionFn] = None,
                 fast: bool = True, fast_forward: bool = False) -> None:
        self._perf_model = perf_model
        self._schedule = schedule
        self._schema = perf_model.schema
        self._servers = schedule.retrieval_servers
        if self._servers is None:
            self._servers = derive_retrieval_servers(perf_model, schedule)
        self._max_wait = max_wait
        self._seed = seed
        self._dispatch = dispatch
        self._admission = resolve_admission_policy(admission)
        self._listeners: List[CompletionFn] = \
            [on_complete] if on_complete is not None else []
        self._fast = bool(fast)
        self._fast_forward = bool(fast_forward)
        if self._fast_forward and not self._fast:
            raise ConfigError(
                "fast_forward requires the fast engine path (fast=True)")
        self._drained = False
        self._sim = Simulation()
        self._accumulator = MetricsAccumulator(self._schema)
        self._next_id = 0
        self._stations: Dict[Stage, Any] = {}
        self._decode: Optional[Any] = None
        # Per-request, per-stage bookkeeping slabs (fast path): three
        # flat float lists with stride == number of pipeline stages,
        # NaN = never touched. Materialized into the record's dicts
        # once, at completion.
        stages_all = pipeline_stages(self._schema)
        self._stage_slot = {stage: i
                            for i, stage in enumerate(stages_all)}
        self._stage_items = tuple(self._stage_slot.items())
        self._nstages = len(stages_all)
        self._slab_enq: List[float] = []
        self._slab_comp: List[float] = []
        self._slab_wait: List[float] = []
        self._slab_pad = [math.nan] * self._nstages
        self._slab_n = 0  # requests slabbed so far (the next slab index)
        self._queue = self._sim._queue  # direct arrival pushes in submit
        self._build()

    # -- construction --------------------------------------------------

    def _stage_perf_fn(self, stage: Stage, resource_amount: int):
        plan = self._schedule.shard_plans.get(stage)
        cache: Dict[int, Any] = {}

        def perf(batch: int):
            # RAGPerfModel.perf is pure; memoizing per (stage, amount)
            # skips the plan-cache plumbing on the dispatch hot path.
            result = cache.get(batch)
            if result is None:
                result = self._perf_model.perf(stage, batch,
                                               resource_amount, plan=plan)
                cache[batch] = result
            return result

        return perf

    def _station_policy(self, stage: Stage,
                        default_wait: float) -> DispatchPolicy:
        """The stage's dispatch policy, resolved against its deadline.

        Deadline precedence: the policy's own ``max_wait``, then the
        engine-wide ``max_wait`` argument, then the stage's batch
        latency.
        """
        selection = self._dispatch
        if isinstance(selection, Mapping):
            selection = selection.get(stage)
        policy = resolve_dispatch_policy(selection)
        if self._max_wait is not None:
            default_wait = self._max_wait
        return policy.resolve(default_wait)

    def _build(self) -> None:
        schema = self._schema
        fast = self._fast
        if fast:
            sim = self._sim
            self._k_arrival = sim.register_handler(self._on_arrival)
            self._k_free = sim.register_handler(_release_resource)
            self._k_complete = sim.register_handler(_complete_batch)
            self._k_flush = sim.register_handler(_flush_station)
        stages = [stage for stage in pipeline_stages(schema)
                  if stage is not Stage.DECODE]
        resources: Dict[int, _Resource] = {}
        for index, group in enumerate(self._schedule.groups):
            resources[index] = _Resource(
                name="+".join(str(s) for s in group.stages))
        retrieval_resource = _Resource("retrieval-servers")
        self._resources = [res for res in resources.values()
                           if "decode" not in res.name]
        if schema.has_retrieval:
            self._resources.append(retrieval_resource)

        # Build stations back to front so each knows its successor.
        deliver_next = self._enter_decode
        for stage in reversed(stages):
            if stage is Stage.RETRIEVAL:
                resource = retrieval_resource
                amount = self._servers
            else:
                group_index = next(
                    i for i, group in enumerate(self._schedule.groups)
                    if stage in group.stages)
                resource = resources[group_index]
                amount = self._schedule.groups[group_index].num_xpus
            batch = self._schedule.batches[stage]
            perf_fn = self._stage_perf_fn(stage, amount)
            policy = self._station_policy(stage, perf_fn(batch).latency)
            if fast:
                station = _FastBatchStation(
                    stage=stage, batch_size=batch, perf_fn=perf_fn,
                    resource=resource, engine=self,
                    downstream=deliver_next, policy=policy,
                    sets_first_token=stage is Stage.PREFIX)
            else:
                station = _BatchStation(
                    stage=stage, batch_size=batch, perf_fn=perf_fn,
                    resource=resource,
                    deliver=self._make_deliver(stage, deliver_next),
                    policy=policy)
            self._stations[stage] = station
            deliver_next = station.accept
        self._entry = deliver_next

        decode_group = next(group for group in self._schedule.groups
                            if Stage.DECODE in group.stages)
        decode_batch = self._schedule.batches[Stage.DECODE]
        decode_perf = self._perf_model.perf(Stage.DECODE, decode_batch,
                                            decode_group.num_xpus)
        step_latency = decode_perf.latency / schema.sequences.decode_len

        retrieval_hook = None
        positions_fn = None
        if schema.is_iterative:
            # Iterative retrieval + re-prefix stations: retrieval shares
            # the CPU servers with the initial retrieval; the re-prefix
            # time-multiplexes the prefix group's chips (§6.1 [III]).
            iter_batch = (self._schedule.iterative_batch
                          or self._schedule.batches[Stage.RETRIEVAL])
            prefix_index = next(
                i for i, group in enumerate(self._schedule.groups)
                if Stage.PREFIX in group.stages)
            retrieval_perf_fn = self._stage_perf_fn(Stage.RETRIEVAL,
                                                    self._servers)
            prefix_perf_fn = self._stage_perf_fn(
                Stage.PREFIX, self._schedule.groups[prefix_index].num_xpus)
            iter_prefix_policy = self._station_policy(
                Stage.PREFIX, prefix_perf_fn(iter_batch).latency)
            iter_retrieval_policy = self._station_policy(
                Stage.RETRIEVAL, retrieval_perf_fn(iter_batch).latency)
            if fast:
                # The re-prefix delivers straight into decode (no
                # first-token logic), matching the oracle's lambda.
                iter_prefix = _FastBatchStation(
                    stage=Stage.PREFIX, batch_size=iter_batch,
                    perf_fn=prefix_perf_fn,
                    resource=resources[prefix_index], engine=self,
                    downstream=self._enter_decode,
                    policy=iter_prefix_policy, sets_first_token=False)
                iter_retrieval = _FastBatchStation(
                    stage=Stage.RETRIEVAL, batch_size=iter_batch,
                    perf_fn=retrieval_perf_fn,
                    resource=retrieval_resource, engine=self,
                    downstream=iter_prefix.accept,
                    policy=iter_retrieval_policy, sets_first_token=False)
            else:
                iter_prefix = _BatchStation(
                    stage=Stage.PREFIX, batch_size=iter_batch,
                    perf_fn=prefix_perf_fn,
                    resource=resources[prefix_index],
                    deliver=lambda sim, record: self._decode.accept(
                        sim, record),
                    policy=iter_prefix_policy)
                iter_retrieval = _BatchStation(
                    stage=Stage.RETRIEVAL, batch_size=iter_batch,
                    perf_fn=retrieval_perf_fn,
                    resource=retrieval_resource,
                    deliver=iter_prefix.accept,
                    policy=iter_retrieval_policy)
            retrieval_hook = iter_retrieval.accept
            retrievals = schema.retrieval_frequency - 1
            base_seed = self._seed

            def positions_fn(record: RequestRecord):
                from repro.workloads.sequences import (
                    sample_retrieval_positions,
                )
                length = record.decode_len or schema.sequences.decode_len
                count = min(retrievals, max(length - 1, 0))
                return sample_retrieval_positions(
                    length, count, seed=base_seed + record.request_id)

        if fast:
            # The executor's bound methods escape into the handler
            # table only *after* this final rebind, so the escaped
            # callables always target the live object.
            self._decode = _FastDecodeExecutor(  # simlint: allow[listener-rebind]
                capacity=decode_batch, step_latency=step_latency,
                decode_len=schema.sequences.decode_len,
                on_complete=self._request_done,
                admission=self._admission, engine=self,
                retrieval_hook=retrieval_hook,
                positions_fn=positions_fn,
                fast_forward=self._fast_forward)
            self._k_kick = self._sim.register_handler(
                self._decode._on_kick)
            self._k_adv = self._sim.register_handler(self._decode._on_adv)
        else:
            self._decode = _DecodeExecutor(  # simlint: allow[listener-rebind]
                capacity=decode_batch, step_latency=step_latency,
                decode_len=schema.sequences.decode_len,
                on_complete=self._request_done,
                admission=self._admission,
                retrieval_hook=retrieval_hook,
                positions_fn=positions_fn)

    def _make_deliver(self, stage: Stage, downstream):
        def deliver(sim: Simulation, record: RequestRecord) -> None:
            if stage is Stage.PREFIX and record.first_token_time is None:
                record.first_token_time = sim.now
            downstream(sim, record)

        return deliver

    def _enter_decode(self, sim: Simulation, record: RequestRecord) -> None:
        self._decode.accept(sim, record)

    def _on_arrival(self, sim: Simulation, record: RequestRecord) -> None:
        self._entry(sim, record)

    def _materialize(self, record: RequestRecord) -> None:
        """Fill the record's per-stage dicts from the engine slabs.

        Runs once per request, at completion, before the accumulator
        and listeners observe the record -- the fast path's only
        per-request dict work. NaN marks a stage never touched
        (NaN != NaN, so ``v == v`` is the "was set" test).
        """
        base = record.slab * self._nstages
        enq = self._slab_enq
        comp = self._slab_comp
        wait = self._slab_wait
        enqueues = record.stage_enqueues
        completions = record.stage_completions
        waits = record.queue_waits
        for stage, offset in self._stage_items:
            i = base + offset
            v = enq[i]
            if v == v:
                enqueues[stage] = v
            v = comp[i]
            if v == v:
                completions[stage] = v
            v = wait[i]
            if v == v:
                waits[stage] = v

    def _request_done(self, sim: Simulation, record: RequestRecord) -> None:
        if self._fast:
            self._materialize(record)
        self._accumulator.finish(record)
        for listener in self._listeners:
            listener(record)

    # -- lifecycle -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._sim.now

    @property
    def offered(self) -> int:
        """Requests submitted so far."""
        return self._accumulator.offered

    @property
    def completed(self) -> int:
        """Requests finished so far."""
        return self._accumulator.completed

    @property
    def in_flight(self) -> int:
        """Submitted but unfinished requests."""
        return self.offered - self.completed

    def tier_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tier offered/completed counts so far (empty when the
        traffic carries no identity)."""
        return self._accumulator.tier_counts()

    @property
    def events_processed(self) -> int:
        """DES events executed so far (the bench harness's numerator)."""
        return self._sim.events_processed

    @property
    def records(self) -> List[RequestRecord]:
        """All submitted records, in submission order."""
        return self._accumulator.records

    @property
    def schema(self):
        """The workload schema this engine serves."""
        return self._schema

    @property
    def schedule(self) -> Schedule:
        """The deployment under test."""
        return self._schedule

    def add_listener(self, listener: CompletionFn) -> None:
        """Subscribe an additional completion listener."""
        self._listeners.append(listener)

    def submit(self, arrival: float, decode_len: Optional[int] = None,
               *, user_id: Optional[str] = None,
               session_id: Optional[str] = None,
               tier: Optional[str] = None) -> RequestRecord:
        """Inject one request at simulated time ``arrival``.

        Args:
            arrival: Arrival timestamp in simulated seconds. Must be
                finite, non-negative, and at or after the engine's
                current time (submissions need not be sorted among
                themselves -- metrics account for the earliest arrival
                regardless of submission order).
            decode_len: Tokens this request generates (the workload
                profile's decode length when None).
            user_id / session_id / tier: Optional identity carried by
                multi-user workloads; rides the record into tier-aware
                admission and per-tier reporting. Anonymous submissions
                leave all three None.

        Returns:
            The request's live :class:`RequestRecord` (its fields fill
            in as the simulation advances).

        Raises:
            ConfigError: on a timestamp behind the engine's clock, a
                non-positive decode length, or an engine that has
                already been drained (single-use lifecycle).
        """
        if self._drained:
            raise ConfigError(
                "engine already drained; a ServingEngine is single-use "
                "-- build a new engine for the next run")
        if not isinstance(arrival, (int, float)) \
                or not math.isfinite(arrival):
            raise ConfigError("arrival must be a finite number")
        if arrival < 0:
            raise ConfigError("arrival times must be non-negative")
        if arrival < self._sim.now:
            raise ConfigError(
                f"out-of-order timestamp: arrival {arrival} is in the "
                f"engine's past (simulated time {self._sim.now})")
        if decode_len is None:
            decode_len = self._schema.sequences.decode_len
        if decode_len <= 0:
            raise ConfigError("decode lengths must be positive")
        record = RequestRecord(request_id=self._next_id, arrival=arrival,
                               decode_len=int(decode_len),
                               user_id=user_id, session_id=session_id,
                               tier=tier)
        self._next_id += 1
        self._accumulator.add(record)
        if self._fast:
            # The slab index is engine-local and deliberately separate
            # from request_id (FleetEngine rewrites request_id to the
            # fleet-wide arrival index after submission).
            record.slab = self._slab_n
            self._slab_n += 1
            pad = self._slab_pad
            self._slab_enq.extend(pad)
            self._slab_comp.extend(pad)
            self._slab_wait.extend(pad)
            # Inline schedule_event_at(arrival, ...): arrival >= now was
            # validated above, and replay-heavy callers submit whole
            # traces, so the call layers matter.
            q = self._queue
            free = q._free
            if not free:
                q._grow()
            slot = free.pop()
            q._kinds[slot] = self._k_arrival
            q._args[slot] = record
            heapq.heappush(q._heap, (arrival, next(q._counter), slot))
        else:
            self._sim.schedule_at(arrival,
                                  lambda s, r=record: self._entry(s, r))
        return record

    def step(self, until: float) -> float:
        """Advance simulated time to ``until``, processing due events.

        Events scheduled past ``until`` stay queued (in order), so
        stepping is resumable; completions fire listeners synchronously.

        Returns:
            The engine's simulated time after the step (``until``).
        """
        if until < self._sim.now:
            raise ConfigError("cannot step backwards in time")
        self._sim.run(until=until)
        return self._sim.now

    def next_event_time(self) -> Optional[float]:
        """The earliest queued event's timestamp, or None when idle.

        Conservative co-simulation hook: a driver interleaving several
        engines (closed-loop fleets) must never advance one engine past
        another's earliest pending event, or cross-engine feedback
        lands in the past.
        """
        queue = self._sim._queue
        return queue.peek_time() if queue else None

    def drain(self) -> float:
        """Run the network empty: process every remaining event.

        After a drain the engine is spent: further :meth:`submit` calls
        raise :class:`~repro.errors.ConfigError` (the documented
        single-use lifecycle, previously corrupted silently).

        Returns:
            The simulated time of the last event.
        """
        self._sim.run()
        self._drained = True
        return self._sim.now

    def _run_to_quiescence(self) -> float:
        """Run the event queue empty *without* sealing the engine.

        :class:`~repro.sim.fleet.FleetEngine` owns its replicas'
        lifecycle and reuses them across fleet-level drains (drain to
        settle retirements, then keep routing traffic), so its drain
        must not trip the public single-use seal.

        Returns:
            The simulated time of the last event.
        """
        self._sim.run()
        return self._sim.now

    # -- results -------------------------------------------------------

    def busy_times(self) -> Dict[str, float]:
        """Accumulated busy seconds per pre-decode resource name."""
        return {resource.name: resource.busy_time
                for resource in self._resources}

    def snapshot(self) -> LiveSnapshot:
        """Running statistics at the engine's current time (O(1))."""
        return self._accumulator.snapshot(self._sim.now)

    def metrics(self) -> ServingMetrics:
        """Aggregate metrics over everything submitted so far."""
        return self._accumulator.metrics(self.busy_times())

    def report(self, trace: RequestTrace,
               slo: Optional[SLOTarget] = None) -> ServingReport:
        """The trace-level :class:`ServingReport` for this run.

        Args:
            trace: The traffic that was (or would be) replayed; supplies
                scenario name and metadata. Use :meth:`recorded_trace`
                for a live run.
            slo: Latency targets (unconstrained when None).
        """
        return self._accumulator.report(trace, slo or SLOTarget(),
                                        self.busy_times())

    def recorded_trace(self, **metadata) -> RequestTrace:
        """The submissions observed so far, as a replayable trace.

        Every engine submission carries an explicit decode length, so
        the trace replays to the same per-request lifecycles. Records
        are emitted in arrival order (a stable sort, so same-instant
        submissions keep their tie-break rank); submission order may
        differ when the caller injected out-of-order timestamps.
        Metadata defaults to ``{"scenario": "live"}``; keyword
        arguments merge on top.

        Raises:
            ConfigError: when nothing has been submitted (an empty
                trace is not representable).
        """
        records = self._accumulator.records
        if not records:
            raise ConfigError("no submissions recorded; an empty trace "
                              "cannot be built")
        merged = {"scenario": "live"}
        merged.update(metadata)
        ordered = sorted(records, key=lambda r: r.arrival)
        return RequestTrace(
            requests=tuple(
                Request(arrival=r.arrival, decode_len=r.decode_len,
                        user_id=r.user_id, session_id=r.session_id,
                        tier=r.tier)
                for r in ordered),
            metadata=merged,
        )
