"""Seeded, dependency-free randomness for simulation policies.

Simulation paths must not touch the process-global RNG (the
``seeded-rng-required`` lint rule enforces this): every random draw a
policy makes has to flow from an explicitly injected seed so two runs
of the same configuration are bit-identical. :class:`DeterministicRNG`
is the sanctioned source -- a SplitMix64 integer stream, the standard
seed-expansion generator, small enough to need no imports and stable
across platforms and Python versions (unlike ``random.Random``'s
internal state layout, this module owns its whole sequence).
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["DeterministicRNG"]

_MASK64 = (1 << 64) - 1


class DeterministicRNG:
    """A seeded SplitMix64 stream with the few draws policies need.

    Deterministic per seed by construction: the same seed always
    yields the same draw sequence, and nearby seeds diverge after one
    step (SplitMix64's avalanche constant mixes the counter fully).
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """The next 64-bit draw of the stream."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        mixed = self._state
        mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & _MASK64
        return mixed ^ (mixed >> 31)

    def randrange(self, bound: int) -> int:
        """A draw in ``[0, bound)`` (rejection-sampled, unbiased)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        # Reject the tail that would bias small residues.
        limit = _MASK64 - (_MASK64 + 1) % bound
        while True:
            draw = self.next_u64()
            if draw <= limit:
                return draw % bound

    def sample_pair(self, count: int) -> Tuple[int, int]:
        """Two distinct indices from ``range(count)`` (count >= 2)."""
        if count < 2:
            raise ValueError("need at least two candidates")
        first = self.randrange(count)
        second = self.randrange(count - 1)
        if second >= first:
            second += 1
        return first, second
