"""Multi-replica fleet over the incremental serving engine.

The provisioning model (:mod:`repro.rago.provisioning`) answers "how
many replicas sustain this load" analytically; :class:`FleetEngine`
is the subsystem that tests the answer under live traffic. It fronts
N independent :class:`~repro.sim.engine.ServingEngine` replicas --
homogeneous by default, per-replica schedule overrides allowed --
behind the engine's own submit/step/drain lifecycle, so every
existing driver (the open-loop replay in ``repro replay``, the live
asyncio front-end in :mod:`repro.serve`) scales out without changing
shape.

Which replica an arrival lands on is a pluggable
:class:`~repro.sim.routing.RoutingPolicy` (round robin by default);
:meth:`FleetEngine.swap_replica` performs a **rolling schedule swap**:
the old engine keeps draining its in-flight work while new arrivals
route around it, so a reconfiguration loses zero requests. The same
drain discipline makes the fleet **elastic**: :meth:`add_replica`
grows it by a routable slot mid-run and :meth:`remove_replica`
shrinks it without dropping in-flight work -- the two primitives the
autoscaling control loop (:mod:`repro.sim.autoscale`) drives.

Merged artifacts (:meth:`snapshot` / :meth:`metrics` /
:meth:`report`) fold every replica's request records into one
:class:`~repro.sim.metrics.MetricsAccumulator`, so fleet-level
latency percentiles, SLO attainment and throughput use exactly the
same estimators as a single engine; utilization fractions are
fleet-slot averages (summed busy seconds over all engines that ever
occupied a slot, divided by the slot count).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigError, ReproError
from repro.pipeline.assembly import Schedule, assemble
from repro.pipeline.stage_perf import RAGPerfModel
from repro.sim.engine import CompletionFn, DispatchSelection, ServingEngine
from repro.sim.metrics import (
    LiveSnapshot,
    MetricsAccumulator,
    RequestRecord,
    ServingMetrics,
    ServingReport,
    SLOTarget,
)
from repro.sim.policies import AdmissionPolicy
from repro.sim.routing import (
    ReplicaView,
    RoutingPolicy,
    resolve_routing_policy,
)
from repro.workloads.traces import Request, RequestTrace

__all__ = ["FleetEngine"]

#: Replica lifecycle states (slot generations move left to right).
_ACTIVE, _DRAINING, _RETIRED = "active", "draining", "retired"


class _ReplicaEntry:
    """One engine generation occupying a fleet slot."""

    __slots__ = ("slot", "engine", "state", "weight")

    def __init__(self, slot: int, engine: ServingEngine,
                 weight: float) -> None:
        self.slot = slot
        self.engine = engine
        self.state = _ACTIVE
        self.weight = weight


class FleetEngine:
    """N serving-engine replicas behind one submit/step/drain lifecycle.

    Args:
        perf_model: Calibrated stage cost models (shared by every
            replica; all replicas serve the same workload schema).
        schedule: The deployment each replica runs -- one
            :class:`~repro.pipeline.Schedule` for a homogeneous fleet,
            or a sequence of schedules for per-replica overrides (the
            sequence length fixes the slot count).
        replicas: Slot count for the homogeneous form (must match the
            sequence length when both are given).
        routing: Request-routing policy -- an instance, a registry
            name from :data:`~repro.sim.routing.ROUTING_POLICIES`, or
            None for round robin.
        max_wait / seed / dispatch / admission: Per-engine knobs,
            passed through to every replica (see
            :class:`~repro.sim.engine.ServingEngine`).
        on_complete: Optional listener invoked with each finished
            request's record. Completions within one :meth:`step` are
            delivered replica by replica (each replica's stream stays
            time-ordered).

    Raises:
        ConfigError: on an empty fleet, a replica-count mismatch, or
            an unknown routing policy.
    """

    def __init__(self, perf_model: RAGPerfModel,
                 schedule: Union[Schedule, Sequence[Schedule]],
                 replicas: Optional[int] = None,
                 routing: Union[None, str, RoutingPolicy] = None,
                 max_wait: Optional[float] = None, seed: int = 0,
                 dispatch: DispatchSelection = None,
                 admission: Union[None, str, AdmissionPolicy] = None,
                 on_complete: Optional[CompletionFn] = None,
                 fast: bool = True, fast_forward: bool = False) -> None:
        if isinstance(schedule, Schedule):
            count = 1 if replicas is None else replicas
            if count < 1:
                raise ConfigError("a fleet needs at least one replica")
            schedules: List[Schedule] = [schedule] * count
        else:
            schedules = list(schedule)
            if not schedules:
                raise ConfigError("a fleet needs at least one replica")
            if replicas is not None and replicas != len(schedules):
                raise ConfigError(
                    f"replicas={replicas} contradicts the "
                    f"{len(schedules)} per-replica schedules")
        self._perf_model = perf_model
        self._schema = perf_model.schema
        self._routing = resolve_routing_policy(routing)
        self._engine_knobs = dict(max_wait=max_wait, seed=seed,
                                  dispatch=dispatch, admission=admission,
                                  fast=fast, fast_forward=fast_forward)
        self._listeners: List[CompletionFn] = \
            [on_complete] if on_complete is not None else []
        self._accumulator = MetricsAccumulator(self._schema)
        self._engines: List[_ReplicaEntry] = []
        self._active: Dict[int, _ReplicaEntry] = {}
        self._submitted: Dict[int, int] = {slot: 0 for slot
                                           in range(len(schedules))}
        self._template = schedules[0]
        self._next_slot = len(schedules)
        self._now = 0.0
        # Active-replica-count integral over time; the utilization
        # denominator once the fleet has been resized (static fleets
        # keep the exact constant-count division).
        self._replica_seconds = 0.0
        self._resized = False
        # Routing-snapshot caches: the sorted active-slot order and one
        # frozen ReplicaView per slot, reused across submits until the
        # slot's observable state actually changes (a million-request
        # replay otherwise allocates a fresh view list per arrival).
        self._order: List[int] = []
        self._views: Dict[int, ReplicaView] = {}
        self._candidates: List[ReplicaView] = []
        for slot, replica_schedule in enumerate(schedules):
            self._install(slot, replica_schedule)

    # -- construction --------------------------------------------------

    def _install(self, slot: int, schedule: Schedule) -> _ReplicaEntry:
        engine = ServingEngine(self._perf_model, schedule,
                               on_complete=self._request_done,
                               **self._engine_knobs)
        try:
            weight = assemble(self._perf_model, schedule).qps
        except ReproError:
            weight = 1.0
        entry = _ReplicaEntry(slot, engine, weight)
        self._engines.append(entry)
        self._active[slot] = entry
        self._membership_changed(slot)
        return entry

    def _membership_changed(self, slot: int) -> None:
        """Invalidate routing caches after ``slot`` joined or left the
        active set (a swapped slot also changes engine and weight)."""
        self._views.pop(slot, None)
        self._order = sorted(self._active)

    def _request_done(self, record: RequestRecord) -> None:
        self._accumulator.finish(record)
        for listener in self._listeners:
            listener(record)

    # -- introspection -------------------------------------------------

    @property
    def schema(self):
        """The workload schema every replica serves."""
        return self._schema

    @property
    def replicas(self) -> int:
        """Active (routable) replica count. Static fleets keep their
        constructed size; an autoscaled fleet's count moves with
        :meth:`add_replica` / :meth:`remove_replica`."""
        return len(self._active)

    @property
    def routing(self) -> RoutingPolicy:
        """The routing policy in force."""
        return self._routing

    @property
    def engines(self) -> List[ServingEngine]:
        """Every engine generation ever installed, creation order
        (active, draining and retired alike)."""
        return [entry.engine for entry in self._engines]

    @property
    def active_slots(self) -> List[int]:
        """Routable slot indices, ascending."""
        return sorted(self._active)

    def active_weights(self) -> List[float]:
        """Analytical-QPS routing weights of the active replicas,
        slot order (the autoscaler's capacity denominator)."""
        return [self._active[slot].weight for slot in sorted(self._active)]

    @property
    def schedules(self) -> List[Schedule]:
        """The active replicas' schedules, slot order."""
        return [self._active[slot].engine.schedule
                for slot in sorted(self._active)]

    @property
    def now(self) -> float:
        """Current simulated time in seconds (the fleet steps every
        replica to the same bound)."""
        return self._now

    @property
    def replica_seconds(self) -> float:
        """Integrated active-replica count over simulated time -- the
        resource cost an elastic fleet is judged on (equals
        ``replicas * now`` while the size never changes)."""
        return self._replica_seconds

    @property
    def offered(self) -> int:
        """Requests submitted across the fleet."""
        return self._accumulator.offered

    @property
    def completed(self) -> int:
        """Requests finished across the fleet."""
        return self._accumulator.completed

    @property
    def in_flight(self) -> int:
        """Submitted but unfinished requests across the fleet."""
        return self.offered - self.completed

    @property
    def records(self) -> List[RequestRecord]:
        """All submitted records, fleet submission order."""
        return self._accumulator.records

    def tier_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tier offered/completed counts across the fleet (empty
        when the traffic carries no identity)."""
        return self._accumulator.tier_counts()

    def add_listener(self, listener: CompletionFn) -> None:
        """Subscribe an additional fleet-wide completion listener."""
        self._listeners.append(listener)

    def replica_stats(self) -> List[Dict[str, Any]]:
        """Per-replica breakdown, one record per engine generation.

        Keys: ``slot``, ``state`` (active/draining/retired),
        ``schedule`` (one-line description), ``offered`` /
        ``completed`` / ``in_flight`` counts, ``throughput`` and the
        running ``mean_ttft`` / ``mean_tpot`` -- the raw material of
        the reporting layer's fleet section and the CI smoke check.
        """
        stats = []
        for entry in self._engines:
            snap = entry.engine.snapshot()
            stats.append({
                "slot": entry.slot,
                "state": entry.state,
                "schedule": entry.engine.schedule.describe(),
                "offered": entry.engine.offered,
                "completed": entry.engine.completed,
                "in_flight": entry.engine.in_flight,
                "throughput": snap.throughput,
                "mean_ttft": snap.mean_ttft,
                "mean_tpot": snap.mean_tpot,
            })
        return stats

    # -- lifecycle -----------------------------------------------------

    def submit(self, arrival: float, decode_len: Optional[int] = None,
               *, user_id: Optional[str] = None,
               session_id: Optional[str] = None,
               tier: Optional[str] = None) -> RequestRecord:
        """Route one request to a replica at simulated time ``arrival``.

        The routing policy sees every **active** slot (draining and
        retired replicas are never offered); validation of the arrival
        and decode length is the chosen engine's. Identity kwargs ride
        the record through to per-tier metrics, and ``session_id`` is
        offered to the routing policy as its sticky key (session-affine
        policies pin a session to one replica).

        Returns:
            The request's live :class:`RequestRecord`.

        Raises:
            ConfigError: when no slot is routable, the policy answers
                a slot it was not offered, or the engine rejects the
                submission.
        """
        views = self._views
        candidates = self._candidates
        del candidates[:]
        for slot in self._order:
            entry = self._active[slot]
            in_flight = entry.engine.in_flight
            submitted = self._submitted[slot]
            view = views.get(slot)
            if view is None or view.in_flight != in_flight \
                    or view.submitted != submitted:
                view = ReplicaView(index=slot, in_flight=in_flight,
                                   submitted=submitted,
                                   weight=entry.weight)
                views[slot] = view
            candidates.append(view)
        slot = self._routing.select(candidates, now=arrival,
                                    session_key=session_id)
        entry = self._active.get(slot)
        if entry is None:
            raise ConfigError(
                f"routing policy {self._routing.name!r} chose slot "
                f"{slot}, which is not routable")
        record = entry.engine.submit(arrival, decode_len=decode_len,
                                     user_id=user_id,
                                     session_id=session_id, tier=tier)
        # Re-key to a fleet-global id: every engine numbers its own
        # submissions from zero, and downstream consumers (completion
        # routing in repro.serve) key on request_id, so per-replica ids
        # must not collide. Safe to overwrite here: no event has run
        # yet, and the engine only reads the id from decode admission
        # onward. (Iterative schemas sample retrieval positions from
        # seed + request_id, so a fleet replica's draws differ from a
        # standalone engine replaying the same subtrace -- ids are
        # fleet-scoped by design.)
        record.request_id = self._accumulator.offered
        self._submitted[slot] += 1
        self._accumulator.add(record)
        return record

    def step(self, until: float) -> float:
        """Advance every replica's simulated time to ``until``.

        Draining replicas keep stepping (that is what drains them);
        a replica whose clock already passed ``until`` -- possible
        after a :meth:`drain` -- is left where it is.

        Returns:
            The fleet's simulated time after the step.
        """
        if until < self._now:
            raise ConfigError("cannot step backwards in time")
        for entry in self._engines:
            # Retired generations hold no in-flight work; walking them
            # forever would make every tick O(total generations) on a
            # long-lived autoscaled fleet.
            if entry.state != _RETIRED:
                entry.engine.step(until=max(until, entry.engine.now))
        self._advance_clock(until)
        self._settle()
        return self._now

    def next_event_time(self) -> Optional[float]:
        """The fleet-wide earliest queued event's timestamp, or None.

        The lockstep bound for closed-loop drivers: stepping the fleet
        past this time would let one replica's completion feedback
        target another replica's past.
        """
        times = [time for entry in self._engines
                 if entry.state != _RETIRED
                 for time in (entry.engine.next_event_time(),)
                 if time is not None]
        return min(times) if times else None

    def drain(self) -> float:
        """Run every replica's network empty.

        Returns:
            The simulated time of the fleet's last event.
        """
        for entry in self._engines:
            if entry.state != _RETIRED:
                # The non-sealing drain: the fleet reuses replicas
                # across fleet-level drains (settle, then keep routing),
                # so the engine's public single-use seal must not trip.
                entry.engine._run_to_quiescence()
        self._advance_clock(max(
            [self._now] + [entry.engine.now for entry in self._engines]))
        self._settle()
        return self._now

    def _advance_clock(self, until: float) -> None:
        """Move the fleet clock forward, integrating replica-seconds
        (the active count is piecewise constant between calls)."""
        if until > self._now:
            self._replica_seconds += len(self._active) \
                * (until - self._now)
            self._now = until

    def swap_replica(self, slot: int, schedule: Schedule) -> ServingEngine:
        """Rolling schedule swap: replace ``slot``'s engine.

        The old engine stops receiving traffic immediately and keeps
        draining its in-flight requests as the fleet steps (zero
        requests are lost); a fresh engine with ``schedule`` takes
        over the slot for new arrivals. The slot's routing counters
        persist, so fair policies do not flood the newcomer.

        Args:
            slot: The fleet slot to reconfigure.
            schedule: The replacement deployment.

        Returns:
            The swapped-in :class:`~repro.sim.engine.ServingEngine`.

        Raises:
            ConfigError: for an unknown or already-draining slot.
        """
        entry = self._active.get(slot)
        if entry is None:
            known = ", ".join(str(s) for s in sorted(self._active))
            raise ConfigError(
                f"no active replica at slot {slot}; active slots: "
                f"{known or 'none'}")
        entry.state = _RETIRED if entry.engine.in_flight == 0 \
            else _DRAINING
        del self._active[slot]
        self._membership_changed(slot)
        return self._install(slot, schedule).engine

    def add_replica(self, schedule: Optional[Schedule] = None) -> int:
        """Grow the fleet by one replica (the scale-up primitive).

        The new engine occupies a fresh slot and is routable
        immediately. Its routing counter starts at the **minimum** of
        the active slots' counters, not zero, so fairness-seeking
        policies (round robin, weighted) fold it into the rotation
        instead of flooding it to "catch up" on traffic it never saw.

        Args:
            schedule: The newcomer's deployment; None replicates the
                fleet's construction-time schedule.

        Returns:
            The new replica's slot index (slots are never reused, so
            the index doubles as a scale-event identifier).
        """
        slot = self._next_slot
        self._next_slot += 1
        self._resized = True
        baseline = min((self._submitted[s] for s in self._active),
                       default=0)
        self._submitted[slot] = baseline
        entry = self._install(slot, schedule or self._template)
        # A replica born mid-run starts its clock at the fleet's now,
        # not zero -- its busy-time accounting must not invent idle
        # history (and step() already never moves a clock backwards).
        entry.engine.step(until=self._now)
        return slot

    def remove_replica(self, slot: Optional[int] = None) -> ServingEngine:
        """Shrink the fleet by one replica, losing zero requests.

        The chosen engine stops receiving traffic immediately and
        keeps draining its in-flight work as the fleet steps --
        exactly the :meth:`swap_replica` drain, minus the replacement.

        Args:
            slot: The slot to retire; None picks the active slot with
                the fewest in-flight requests (ties to the
                highest-numbered, i.e. youngest, slot) so a scale-down
                drains as little work as possible.

        Returns:
            The draining :class:`~repro.sim.engine.ServingEngine`.

        Raises:
            ConfigError: for an unknown/already-draining slot, or when
                removal would leave no active replica.
        """
        if len(self._active) <= 1:
            raise ConfigError(
                "cannot remove the last active replica; a fleet must "
                "keep at least one")
        if slot is None:
            slot = min(self._active,
                       key=lambda s: (self._active[s].engine.in_flight,
                                      -s))
        entry = self._active.get(slot)
        if entry is None:
            known = ", ".join(str(s) for s in sorted(self._active))
            raise ConfigError(
                f"no active replica at slot {slot}; active slots: "
                f"{known or 'none'}")
        entry.state = _RETIRED if entry.engine.in_flight == 0 \
            else _DRAINING
        del self._active[slot]
        self._membership_changed(slot)
        self._resized = True
        return entry.engine

    def _settle(self) -> None:
        """Retire draining replicas whose in-flight work finished."""
        for entry in self._engines:
            if entry.state == _DRAINING and entry.engine.in_flight == 0:
                entry.state = _RETIRED

    # -- results -------------------------------------------------------

    def busy_times(self) -> Dict[str, float]:
        """Slot-averaged busy seconds per resource name: summed over
        every engine generation, divided by the replica count, so the
        derived utilization reads as "the average replica's busy
        fraction". A fleet that has been resized divides by the
        **time-weighted** average active count instead -- dividing
        all generations' busy seconds by whatever size the fleet
        happens to end at would inflate (or dilute) the fraction."""
        merged: Dict[str, float] = {}
        for entry in self._engines:
            for name, busy in entry.engine.busy_times().items():
                merged[name] = merged.get(name, 0.0) + busy
        if self._resized and self._now > 0:
            slots = max(self._replica_seconds / self._now, 1.0)
        else:
            slots = max(self.replicas, 1)
        return {name: busy / slots for name, busy in merged.items()}

    def snapshot(self) -> LiveSnapshot:
        """Fleet-wide running statistics at the current time (O(1))."""
        return self._accumulator.snapshot(self._now)

    def metrics(self) -> ServingMetrics:
        """Merged aggregate metrics over everything submitted."""
        return self._accumulator.metrics(self.busy_times())

    def report(self, trace: RequestTrace,
               slo: Optional[SLOTarget] = None) -> ServingReport:
        """The merged fleet-level :class:`ServingReport`.

        Same estimators as a single engine's report, fed with every
        replica's records; per-replica drill-down comes from
        :meth:`replica_stats` or each engine's own ``report``.
        """
        return self._accumulator.report(trace, slo or SLOTarget(),
                                        self.busy_times())

    def recorded_trace(self, **metadata) -> RequestTrace:
        """The fleet's observed submissions as one replayable trace,
        arrival-ordered (stable, so same-instant submissions keep
        their fleet tie-break rank). Metadata defaults to
        ``{"scenario": "live"}``; keyword arguments merge on top.

        Raises:
            ConfigError: when nothing has been submitted.
        """
        records = self._accumulator.records
        if not records:
            raise ConfigError("no submissions recorded; an empty trace "
                              "cannot be built")
        merged: Dict[str, Any] = {"scenario": "live"}
        merged.update(metadata)
        ordered = sorted(records, key=lambda r: r.arrival)
        return RequestTrace(
            requests=tuple(
                Request(arrival=r.arrival, decode_len=r.decode_len,
                        user_id=r.user_id, session_id=r.session_id,
                        tier=r.tier)
                for r in ordered),
            metadata=merged,
        )
