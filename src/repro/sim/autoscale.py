"""Autoscaling control loop over the multi-replica fleet engine.

RAGO picks TTFT/TPOT-optimal schedules *per QPS rating*, but
production traffic is diurnal and bursty: a fixed ``provision()``
replica count is wasteful at the trough or SLO-violating at the peak.
This module closes the loop -- a pluggable :class:`AutoscalePolicy`
(mirroring the :mod:`repro.sim.policies` / :mod:`repro.sim.routing`
registries) watches windowed fleet statistics and an
:class:`Autoscaler` driver grows/shrinks the fleet through
:meth:`~repro.sim.fleet.FleetEngine.add_replica` /
:meth:`~repro.sim.fleet.FleetEngine.remove_replica` zero-loss drains,
emitting a :class:`ScalingEvent` timeline.

Controllers (each a frozen dataclass with scale-up/scale-down
thresholds; the driver owns min/max replicas and the cooldown):

* :class:`TargetUtilizationPolicy` -- hold offered load near a target
  fraction of the fleet's analytical capacity; scales proportionally
  on breach, so one decision can add several replicas.
* :class:`QueueDepthPolicy` -- bound the in-flight depth per replica
  (the Little's-law proxy that needs no rated capacity).
* :class:`SLOAttainmentPolicy` -- steer on the windowed SLO
  attainment itself, the closed-loop form of the paper's "schedules
  must match the offered QPS".

:class:`AutoscaleConfig` is the serializable envelope behind
``repro serve|replay --autoscale policy=...,min=...,max=...``;
:func:`parse_autoscale_spec` / :func:`autoscale_spec` convert the CLI
spelling to and from it exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.sim.fleet import FleetEngine
from repro.sim.metrics import RequestRecord, SLOTarget

__all__ = [
    "FleetView",
    "AutoscalePolicy",
    "TargetUtilizationPolicy",
    "QueueDepthPolicy",
    "SLOAttainmentPolicy",
    "AUTOSCALE_POLICIES",
    "resolve_autoscale_policy",
    "AutoscaleConfig",
    "parse_autoscale_spec",
    "autoscale_spec",
    "ScalingEvent",
    "Autoscaler",
]


@dataclass(frozen=True)
class FleetView:
    """What an autoscale policy may observe at one control boundary.

    Attributes:
        now: Simulated time of the decision.
        replicas: Active (routable) replica count.
        in_flight: Submitted-but-unfinished requests fleet-wide.
        window_seconds: Length of the observation window (time since
            the previous control decision).
        window_arrivals: Requests submitted during the window.
        window_completions: Requests finished during the window.
        window_slo_met: Window completions meeting the joint SLO (an
            unconstrained SLO counts every completion as met).
        replica_qps: Mean analytical saturation QPS of one active
            replica (0 when unrated).
    """

    now: float
    replicas: int
    in_flight: int
    window_seconds: float
    window_arrivals: int
    window_completions: int
    window_slo_met: int
    replica_qps: float

    @property
    def arrival_rate(self) -> float:
        """Offered load over the window in requests per second."""
        if self.window_seconds <= 0:
            return 0.0
        return self.window_arrivals / self.window_seconds

    @property
    def queue_depth(self) -> float:
        """In-flight requests per active replica."""
        return self.in_flight / max(self.replicas, 1)

    @property
    def utilization(self) -> float:
        """Offered load as a fraction of the fleet's rated capacity
        (0 when the replicas carry no analytical rating)."""
        capacity = self.replicas * self.replica_qps
        if capacity <= 0:
            return 0.0
        return self.arrival_rate / capacity

    @property
    def attainment(self) -> Optional[float]:
        """Joint SLO attainment over the window's completions (None
        when nothing completed -- no evidence either way)."""
        if self.window_completions <= 0:
            return None
        return self.window_slo_met / self.window_completions


@dataclass(frozen=True)
class AutoscalePolicy:
    """Maps one :class:`FleetView` to a desired replica count.

    Subclasses override :meth:`desired_replicas` and carry their own
    scale-up/scale-down thresholds (the hysteresis band); the
    :class:`Autoscaler` clamps the answer to [min, max] replicas and
    enforces the cooldown, so policies stay pure decision functions.
    """

    @property
    def name(self) -> str:
        """Registry name (kebab-case class name by default)."""
        return type(self).__name__.replace("Policy", "").lower()

    def desired_replicas(self, view: FleetView) -> int:
        """The replica count this policy wants (unclamped).

        Returning ``view.replicas`` means "hold"."""
        raise NotImplementedError


@dataclass(frozen=True)
class TargetUtilizationPolicy(AutoscalePolicy):
    """Hold offered load near a target fraction of rated capacity.

    Utilization is the window's arrival rate over ``replicas *
    replica_qps``. Above ``up`` the fleet jumps straight to the size
    that restores ``target`` (proportional control -- one decision can
    add several replicas during a surge); below ``down`` it sheds one
    replica per decision (conservative shrink). The [down, up] band is
    the hysteresis dead zone.

    Attributes:
        up: Scale-up utilization threshold (exclusive).
        down: Scale-down utilization threshold (exclusive).
        target: Post-scale-up utilization setpoint.
    """

    up: float = 0.85
    down: float = 0.5
    target: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.down < self.up:
            raise ConfigError(
                "target-utilization needs 0 <= down < up "
                f"(got down={self.down}, up={self.up})")
        if self.target <= 0:
            raise ConfigError("target utilization must be positive")

    @property
    def name(self) -> str:
        return "target-utilization"

    def desired_replicas(self, view: FleetView) -> int:
        if view.window_seconds <= 0 or view.replica_qps <= 0:
            return view.replicas
        utilization = view.utilization
        if utilization > self.up:
            setpoint = math.ceil(
                view.arrival_rate / (self.target * view.replica_qps))
            return max(view.replicas + 1, setpoint)
        if utilization < self.down:
            return view.replicas - 1
        return view.replicas


@dataclass(frozen=True)
class QueueDepthPolicy(AutoscalePolicy):
    """Bound the in-flight depth per replica.

    The capacity-agnostic controller: no analytical rating needed,
    just Little's law. Above ``up`` in-flight requests per replica it
    grows to the size that restores ``up`` (at least one replica);
    below ``down`` it sheds one replica per decision.

    Attributes:
        up: Scale-up depth threshold (exclusive, per replica).
        down: Scale-down depth threshold (exclusive, per replica).
    """

    up: float = 8.0
    down: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.down < self.up:
            raise ConfigError(
                "queue-depth needs 0 <= down < up "
                f"(got down={self.down}, up={self.up})")

    @property
    def name(self) -> str:
        return "queue-depth"

    def desired_replicas(self, view: FleetView) -> int:
        if view.queue_depth > self.up:
            return max(view.replicas + 1,
                       math.ceil(view.in_flight / self.up))
        if view.queue_depth < self.down:
            return view.replicas - 1
        return view.replicas


@dataclass(frozen=True)
class SLOAttainmentPolicy(AutoscalePolicy):
    """Steer on the windowed SLO attainment itself.

    The closed-loop controller: below the ``up`` floor (too many SLO
    misses) it adds a replica; at or above the ``down`` ceiling --
    with no backlog pressure -- it sheds one. Windows with zero
    completions hold (no evidence either way).

    Attributes:
        up: Attainment floor below which the fleet grows.
        down: Attainment ceiling at which the fleet may shrink.
    """

    up: float = 0.9
    down: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.up < self.down <= 1.0:
            raise ConfigError(
                "slo-attainment needs 0 < up < down <= 1 "
                f"(got up={self.up}, down={self.down})")

    @property
    def name(self) -> str:
        return "slo-attainment"

    def desired_replicas(self, view: FleetView) -> int:
        attainment = view.attainment
        if attainment is None:
            return view.replicas
        if attainment < self.up:
            return view.replicas + 1
        if attainment >= self.down and view.queue_depth < 1.0:
            return view.replicas - 1
        return view.replicas


#: Named autoscale policies for the CLI / config front-ends. Values
#: are zero-argument factories returning the default-configured
#: policy.
AUTOSCALE_POLICIES: Dict[str, Callable[[], AutoscalePolicy]] = {
    "target-utilization": TargetUtilizationPolicy,
    "queue-depth": QueueDepthPolicy,
    "slo-attainment": SLOAttainmentPolicy,
}


def resolve_autoscale_policy(
        policy: Union[None, str, AutoscalePolicy]) -> AutoscalePolicy:
    """Normalize an autoscale-policy argument (None/name/instance)."""
    if policy is None:
        return QueueDepthPolicy()
    if isinstance(policy, AutoscalePolicy):
        return policy
    try:
        return AUTOSCALE_POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted(AUTOSCALE_POLICIES))
        raise ConfigError(
            f"unknown autoscale policy {policy!r}; known: {known}"
        ) from None


@dataclass(frozen=True)
class AutoscaleConfig:
    """Settings of one autoscaling control loop (config-envelope
    friendly; the exact object behind ``--autoscale``).

    Attributes:
        policy: Registry name of the controller (see
            :data:`AUTOSCALE_POLICIES`).
        min_replicas / max_replicas: Fleet size bounds the driver
            clamps every decision to.
        interval: Simulated seconds between control decisions.
        cooldown: Simulated seconds after a scaling action during
            which further actions are suppressed (flap damping).
        scale_up / scale_down: Optional overrides of the policy's own
            up/down thresholds (None keeps the policy defaults).
    """

    policy: str = "queue-depth"
    min_replicas: int = 1
    max_replicas: int = 4
    interval: float = 1.0
    cooldown: float = 3.0
    scale_up: Optional[float] = None
    scale_down: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError("min_replicas must be at least 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"max_replicas={self.max_replicas} must be at least "
                f"min_replicas={self.min_replicas}")
        if self.interval <= 0:
            raise ConfigError("control interval must be positive")
        if self.cooldown < 0:
            raise ConfigError("cooldown must be non-negative")
        self.build_policy()  # validates name and threshold overrides

    def build_policy(self) -> AutoscalePolicy:
        """The configured controller instance (thresholds applied)."""
        policy = resolve_autoscale_policy(self.policy)
        overrides: Dict[str, float] = {}
        if self.scale_up is not None:
            overrides["up"] = self.scale_up
        if self.scale_down is not None:
            overrides["down"] = self.scale_down
        if not overrides:
            return policy
        try:
            return replace(policy, **overrides)
        except TypeError as error:  # pragma: no cover - all take up/down
            raise ConfigError(
                f"policy {self.policy!r} rejects threshold overrides: "
                f"{error}") from error


#: --autoscale key -> (AutoscaleConfig field, converter).
_SPEC_KEYS: Dict[str, Tuple[str, Callable[[str], Any]]] = {
    "policy": ("policy", str),
    "min": ("min_replicas", int),
    "max": ("max_replicas", int),
    "interval": ("interval", float),
    "cooldown": ("cooldown", float),
    "up": ("scale_up", float),
    "down": ("scale_down", float),
}


def parse_autoscale_spec(
        spec: Union[None, str, AutoscaleConfig]) -> AutoscaleConfig:
    """Parse a CLI/config autoscale selection.

    Accepts an :class:`AutoscaleConfig` (passed through), a bare
    policy name (``queue-depth``), or the key=value spelling --
    ``policy=queue-depth,min=1,max=6,interval=0.5,cooldown=2,up=8,
    down=1`` -- with unknown keys and malformed values rejected.
    None yields the default config.

    Raises:
        ConfigError: on an unknown key or policy, a value that fails
            to convert, or thresholds the policy itself rejects.
    """
    if spec is None:
        return AutoscaleConfig()
    if isinstance(spec, AutoscaleConfig):
        return spec
    # Imported here: repro.config pulls in this module for its
    # envelope serializers, so a top-level import would be circular.
    from repro.config.specs import parse_kv_spec

    # A bare token is a policy-name shortcut; the config's own
    # validation rejects unknown names with the known list.
    kwargs = parse_kv_spec(
        spec, _SPEC_KEYS, label="autoscale",
        example="policy=queue-depth,min=1,max=4", bare_key="policy")
    return AutoscaleConfig(**kwargs)


def autoscale_spec(config: AutoscaleConfig) -> str:
    """The CLI spelling of an autoscale config.

    The inverse of :func:`parse_autoscale_spec`: the returned string
    parses back to an equal config, which is how a ``--json``
    artifact round-trips the autoscaling selection.
    """
    from repro.config.specs import format_kv_spec

    pairs = [("policy", config.policy),
             ("min", config.min_replicas),
             ("max", config.max_replicas),
             ("interval", repr(config.interval)),
             ("cooldown", repr(config.cooldown))]
    if config.scale_up is not None:
        pairs.append(("up", repr(config.scale_up)))
    if config.scale_down is not None:
        pairs.append(("down", repr(config.scale_down)))
    return format_kv_spec(pairs)


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler decision that changed the fleet size.

    Attributes:
        time: Simulated time of the decision.
        action: ``"up"`` or ``"down"``.
        slots: Slot indices added (up) or sent draining (down).
        replicas_before / replicas_after: Active counts around the
            action.
        reason: Human-readable trigger (policy name + the windowed
            statistics that tripped it).
    """

    time: float
    action: str
    slots: Tuple[int, ...]
    replicas_before: int
    replicas_after: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the ``--json`` / stats-op payload row)."""
        return {"time": self.time, "action": self.action,
                "slots": list(self.slots),
                "replicas_before": self.replicas_before,
                "replicas_after": self.replicas_after,
                "reason": self.reason}


class Autoscaler:
    """Drives one fleet's size from a policy, on simulated time.

    The driver samples the fleet at every control boundary (an
    :class:`FleetView` of the window since the previous decision),
    asks the policy for a desired size, clamps it to
    [min_replicas, max_replicas], and -- outside the cooldown --
    applies the delta through zero-loss
    :meth:`~repro.sim.fleet.FleetEngine.add_replica` /
    :meth:`~repro.sim.fleet.FleetEngine.remove_replica` calls,
    recording a :class:`ScalingEvent` per action. It also integrates
    **replica-seconds** (the cost axis an elastic fleet is judged on)
    over the run.

    Two driving modes:

    * **open loop** -- :meth:`run_trace` replays a
      :class:`~repro.workloads.traces.RequestTrace`, interleaving
      submissions with control boundaries;
    * **live** -- a wall-clock pump (:class:`repro.serve.LiveServer`)
      steps the fleet and calls :meth:`maybe_control` with the mapped
      simulated time each tick.

    Args:
        fleet: The :class:`~repro.sim.fleet.FleetEngine` to scale
            (its constructed size should sit within [min, max]; the
            first decisions pull it into range otherwise).
        policy: Controller instance or registry name (queue-depth
            when None).
        min_replicas / max_replicas / interval / cooldown: Driver
            knobs, as in :class:`AutoscaleConfig`.
        slo: Targets behind the windowed attainment statistic (an
            unconstrained target scores every completion as met).
    """

    def __init__(self, fleet: FleetEngine,
                 policy: Union[None, str, AutoscalePolicy] = None, *,
                 min_replicas: int = 1, max_replicas: int = 4,
                 interval: float = 1.0, cooldown: float = 3.0,
                 slo: Optional[SLOTarget] = None) -> None:
        if not isinstance(fleet, FleetEngine):
            raise ConfigError(
                "the autoscaler drives a FleetEngine; wrap a single "
                "engine in a fleet of one replica first")
        if min_replicas < 1:
            raise ConfigError("min_replicas must be at least 1")
        if max_replicas < min_replicas:
            raise ConfigError(
                f"max_replicas={max_replicas} must be at least "
                f"min_replicas={min_replicas}")
        if interval <= 0:
            raise ConfigError("control interval must be positive")
        if cooldown < 0:
            raise ConfigError("cooldown must be non-negative")
        self._fleet = fleet
        self._policy = resolve_autoscale_policy(policy)
        self._min = min_replicas
        self._max = max_replicas
        self._interval = interval
        self._cooldown = cooldown
        self._slo = slo or SLOTarget()
        self._events: List[ScalingEvent] = []
        self._next_control = interval
        self._last_control = 0.0
        self._last_action = -math.inf
        self._last_offered = fleet.offered
        self._window_completions = 0
        self._window_slo_met = 0
        fleet.add_listener(self._on_complete)

    @classmethod
    def from_config(cls, fleet: FleetEngine, config: AutoscaleConfig,
                    slo: Optional[SLOTarget] = None) -> "Autoscaler":
        """Build the driver an :class:`AutoscaleConfig` describes."""
        return cls(fleet, config.build_policy(),
                   min_replicas=config.min_replicas,
                   max_replicas=config.max_replicas,
                   interval=config.interval,
                   cooldown=config.cooldown, slo=slo)

    # -- introspection -------------------------------------------------

    @property
    def fleet(self) -> FleetEngine:
        """The fleet under control."""
        return self._fleet

    @property
    def policy(self) -> AutoscalePolicy:
        """The controller in force."""
        return self._policy

    @property
    def interval(self) -> float:
        """Simulated seconds between control decisions."""
        return self._interval

    @property
    def min_replicas(self) -> int:
        """Lower fleet-size clamp."""
        return self._min

    @property
    def max_replicas(self) -> int:
        """Upper fleet-size clamp."""
        return self._max

    @property
    def events(self) -> List[ScalingEvent]:
        """Every size-changing decision so far, time order."""
        return list(self._events)

    @property
    def replica_seconds(self) -> float:
        """Integrated active-replica count over simulated time -- the
        fleet's resource cost so far (compare against ``replicas *
        duration`` of a static fleet). Delegates to the fleet's own
        clock integral, so it is current to the last step."""
        return self._fleet.replica_seconds

    def timeline(self) -> List[Dict[str, Any]]:
        """The scaling events as JSON-ready rows (the raw material of
        :func:`repro.reporting.format_scaling_timeline` and the
        ``--json`` payload)."""
        return [event.to_dict() for event in self._events]

    # -- fleet feedback ------------------------------------------------

    def _on_complete(self, record: RequestRecord) -> None:
        self._window_completions += 1
        verdict = self._slo.check(record)["joint"]
        if verdict is not False:
            self._window_slo_met += 1

    def finalize(self, now: float) -> float:
        """Close the replica-seconds integral at ``now`` (steps the
        fleet's clock forward if it lags; call once the run is
        drained).

        Returns:
            The total replica-seconds.
        """
        if now > self._fleet.now:
            self._fleet.step(until=now)
        return self._fleet.replica_seconds

    # -- control -------------------------------------------------------

    def _view(self, now: float) -> FleetView:
        weights = self._fleet.active_weights()
        offered = self._fleet.offered
        view = FleetView(
            now=now,
            replicas=self._fleet.replicas,
            in_flight=self._fleet.in_flight,
            window_seconds=now - self._last_control,
            window_arrivals=offered - self._last_offered,
            window_completions=self._window_completions,
            window_slo_met=self._window_slo_met,
            replica_qps=sum(weights) / len(weights) if weights else 0.0,
        )
        self._last_offered = offered
        self._window_completions = 0
        self._window_slo_met = 0
        self._last_control = now
        return view

    def _reason(self, view: FleetView, desired: int) -> str:
        parts = [f"depth={view.queue_depth:.1f}",
                 f"rate={view.arrival_rate:.1f}/s"]
        if view.replica_qps > 0:
            parts.append(f"util={view.utilization:.2f}")
        if view.attainment is not None:
            parts.append(f"slo={view.attainment:.2f}")
        return (f"{self._policy.name} wants {desired} "
                f"({', '.join(parts)})")

    def control(self, now: float) -> Optional[ScalingEvent]:
        """Run one control decision at simulated time ``now``.

        Samples the window since the previous decision, asks the
        policy, clamps to [min, max], and -- outside the cooldown --
        applies the delta through zero-loss drains. The fleet should
        already be stepped to (at least) ``now``.

        Returns:
            The :class:`ScalingEvent` if the fleet size changed, else
            None.
        """
        if now < self._last_control:
            raise ConfigError("control decisions cannot move backwards "
                              "in time")
        view = self._view(now)
        desired = self._policy.desired_replicas(view)
        desired = min(max(desired, self._min), self._max)
        current = view.replicas
        if desired == current \
                or now - self._last_action < self._cooldown:
            return None
        before = set(self._fleet.active_slots)
        while self._fleet.replicas < desired:
            self._fleet.add_replica()
        while self._fleet.replicas > desired:
            self._fleet.remove_replica()
        after = set(self._fleet.active_slots)
        event = ScalingEvent(
            time=now,
            action="up" if desired > current else "down",
            slots=tuple(sorted(before.symmetric_difference(after))),
            replicas_before=current,
            replicas_after=desired,
            reason=self._reason(view, desired),
        )
        self._events.append(event)
        self._last_action = now
        return event

    def maybe_control(self, now: float) -> Optional[ScalingEvent]:
        """Run the control decision due at or before ``now``, if any.

        The live pump calls this every tick with the wall-mapped
        simulated time; boundaries missed during a stall are
        collapsed into one decision (a catch-up storm of zero-width
        windows would defeat the cooldown). The decision itself is
        taken at ``now`` -- the time the counters are actually
        sampled -- not back-dated to the grid boundary, which would
        divide a ``(last_control, now]`` window's arrivals by a
        shorter span and overstate the rate.

        Returns:
            The :class:`ScalingEvent` if the fleet size changed.
        """
        if now < self._next_control:
            return None
        missed = math.floor((now - self._next_control) / self._interval)
        self._next_control += (missed + 1) * self._interval
        return self.control(now)

    def run_trace(self, trace) -> FleetEngine:
        """Open-loop replay with the control loop interleaved.

        Submits every request of ``trace`` in arrival order, stepping
        the fleet to each control boundary on the way and deciding
        there; after the last arrival it keeps stepping boundary to
        boundary until the fleet drains (so the post-peak scale-down
        is part of the record), then finalizes the replica-seconds
        integral.

        Returns:
            The drained fleet (build reports from it as usual).
        """
        lens = trace.decode_lens or (None,) * trace.num_requests
        for arrival, decode_len in zip(trace.arrivals, lens):
            while self._next_control <= arrival:
                boundary = self._next_control
                self._fleet.step(until=boundary)
                self.maybe_control(boundary)
            self._fleet.submit(arrival, decode_len=decode_len)
        stalled = 0
        while self._fleet.in_flight and stalled < 1000:
            completed = self._fleet.completed
            boundary = self._next_control
            self._fleet.step(until=boundary)
            self.maybe_control(boundary)
            stalled = stalled + 1 if self._fleet.completed == completed \
                else 0
        self._fleet.drain()
        self.finalize(self._fleet.now)
        return self._fleet
