"""Canonical DES hot-path benchmark harness.

One fixed workload -- a Case I hyperscale network replaying a seeded
200 QPS poisson trace -- shared by everything that measures the
engine's throughput: the ``repro bench`` subcommand,
``scripts/profile_hotpath.py``, and the CI events/sec floor in
``benchmarks/test_bench_event_throughput.py``. Keeping the scenario in
one place means every number quoted anywhere (README, CI artifacts,
benchmark JSON) is the same replay.

Events/sec is the honest figure of merit here: the fast engine
processes the *same* event count as the oracle on this workload (one
arrival per request, one advance per decode step, one free + one
complete per batch dispatch), so a fast/oracle events-per-second ratio
is a pure wall-clock speedup, not an event-count artifact.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hardware import ClusterSpec
from repro.pipeline import PlacementGroup, RAGPerfModel, Schedule
from repro.schema import Stage, case_i_hyperscale
from repro.sim.engine import ServingEngine
from repro.workloads import poisson_trace
from repro.workloads.traces import RequestTrace

__all__ = [
    "BenchResult",
    "canonical_network",
    "canonical_trace",
    "replay_trace",
    "profile_replay",
    "format_result",
]

#: Arrival rate of the canonical trace (requests per second). The
#: loaded regime is deliberate: the oracle's per-step O(live-requests)
#: bookkeeping is exactly what the slab path removes, so a lightly
#: loaded trace would understate (and a saturated one overstate) the
#: speedup a real sweep sees.
CANONICAL_RATE_QPS = 800.0

#: Requests of the canonical CI replay (approximate: the trace is a
#: seeded poisson draw over ``requests / rate`` seconds).
CANONICAL_REQUESTS = 100_000


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one timed replay of the canonical workload.

    Attributes:
        requests: Requests submitted.
        completed: Requests that finished decoding.
        events: DES events the engine processed.
        wall_seconds: Wall-clock seconds for submit + drain.
        events_per_sec: ``events / wall_seconds``.
        requests_per_sec: ``completed / wall_seconds``.
    """

    requests: int
    completed: int
    events: int
    wall_seconds: float
    events_per_sec: float
    requests_per_sec: float


def canonical_network() -> Tuple[RAGPerfModel, Schedule]:
    """The benchmark deployment: Case I hyperscale 8B on 32 servers."""
    cluster = ClusterSpec(num_servers=32)
    pm = RAGPerfModel(case_i_hyperscale("8B"), cluster)
    schedule = Schedule(
        groups=(PlacementGroup((Stage.PREFIX,), 32),
                PlacementGroup((Stage.DECODE,), 32)),
        batches={Stage.PREFIX: 32, Stage.DECODE: 512,
                 Stage.RETRIEVAL: 64},
    )
    return pm, schedule


def canonical_trace(requests: int = CANONICAL_REQUESTS,
                    seed: int = 42) -> RequestTrace:
    """A seeded poisson trace sized to roughly ``requests`` arrivals."""
    duration = requests / CANONICAL_RATE_QPS
    return poisson_trace(CANONICAL_RATE_QPS, duration, seed=seed,
                         mean_decode_len=128)


def replay_trace(perf_model: RAGPerfModel, schedule: Schedule,
                 trace: RequestTrace, fast: bool = True,
                 fast_forward: bool = False) -> BenchResult:
    """Submit the whole trace, drain, and time the replay."""
    engine = ServingEngine(perf_model, schedule, fast=fast,
                           fast_forward=fast_forward)
    submit = engine.submit
    start = time.perf_counter()  # simlint: allow[no-wallclock-in-sim]
    for arrival, length in zip(trace.arrivals, trace.decode_lens):
        submit(arrival, decode_len=length)
    engine.drain()
    wall = time.perf_counter() - start  # simlint: allow[no-wallclock-in-sim]
    wall = max(wall, 1e-9)
    events = engine.events_processed
    return BenchResult(
        requests=trace.num_requests,
        completed=engine.completed,
        events=events,
        wall_seconds=wall,
        events_per_sec=events / wall,
        requests_per_sec=engine.completed / wall,
    )


def profile_replay(perf_model: RAGPerfModel, schedule: Schedule,
                   trace: RequestTrace, top: int = 15,
                   fast: bool = True, fast_forward: bool = False,
                   ) -> Tuple[BenchResult, str]:
    """cProfile one replay; returns (result, top-N table text).

    The wall clock inside ``result`` includes profiler overhead, so
    quote events/sec from an unprofiled :func:`replay_trace` run and
    use this table for *where the time goes*.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    result = replay_trace(perf_model, schedule, trace, fast=fast,
                          fast_forward=fast_forward)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return result, stream.getvalue()


def format_result(result: BenchResult,
                  label: Optional[str] = None) -> str:
    """One aligned summary block for CLI / CI log output."""
    lines = []
    if label:
        lines.append(label)
    lines.extend([
        f"  requests      : {result.requests}",
        f"  completed     : {result.completed}",
        f"  events        : {result.events}",
        f"  wall seconds  : {result.wall_seconds:.3f}",
        f"  events/sec    : {result.events_per_sec:,.0f}",
        f"  requests/sec  : {result.requests_per_sec:,.0f}",
    ])
    return "\n".join(lines)
