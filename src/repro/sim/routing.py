"""Pluggable request-routing policies for the multi-replica fleet.

A :class:`~repro.sim.fleet.FleetEngine` fronts N serving-engine
replicas; which replica a new arrival lands on is this module's
decision point, mirroring the :mod:`repro.sim.policies` pattern: each
policy is a stateless frozen dataclass, a named registry
(``ROUTING_POLICIES``) backs the CLI's ``--routing`` selection, and
:func:`resolve_routing_policy` normalizes None/name/instance
arguments.

Policies are pure functions of the candidate replicas' observable
state (:class:`ReplicaView`): in-flight depth, how many requests the
slot has ever been routed, and an analytical-QPS weight. The fleet
owns the counters, so one policy instance can serve many fleets.

Variants:

* :class:`RoundRobinRouting` -- cycle the candidates (least-submitted
  first), the classic fair splitter; on a homogeneous fleet it
  partitions a trace into exact every-Nth subsequences.
* :class:`LeastInFlightRouting` -- join the shortest queue, the
  greedy load balancer that adapts to decode-length skew.
* :class:`WeightedQPSRouting` -- deterministic weighted round robin:
  each replica receives traffic proportional to its schedule's
  analytical saturation QPS, the right default for heterogeneous
  fleets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Union

from repro.errors import ConfigError


@dataclass(frozen=True)
class ReplicaView:
    """What a routing policy may observe about one candidate replica.

    Attributes:
        index: The replica's fleet slot.
        in_flight: Requests submitted to the slot but not finished.
        submitted: Requests ever routed to the slot (persists across
            rolling schedule swaps, so a freshly swapped-in engine is
            not flooded to "catch up").
        weight: Relative capacity, normally the schedule's analytical
            saturation QPS (1.0 when unknown). Only weighted policies
            read it.
    """

    index: int
    in_flight: int
    submitted: int
    weight: float = 1.0


@dataclass(frozen=True)
class RoutingPolicy:
    """Picks which replica receives the next arrival.

    Subclasses override :meth:`select`; candidates are the fleet's
    **routable** replicas only (draining and retired slots are never
    offered).
    """

    @property
    def name(self) -> str:
        """Registry name (kebab-case class name by default)."""
        return type(self).__name__.replace("Routing", "").lower()

    def select(self, replicas: Sequence[ReplicaView]) -> int:
        """The chosen replica's ``index`` among ``replicas``.

        Args:
            replicas: Views of every routable replica, slot order.

        Raises:
            ConfigError: when no replica is routable.
        """
        raise NotImplementedError

    @staticmethod
    def _require(replicas: Sequence[ReplicaView]) -> None:
        if not replicas:
            raise ConfigError("no routable replica: every fleet slot is "
                              "draining or retired")


@dataclass(frozen=True)
class RoundRobinRouting(RoutingPolicy):
    """Cycle through the replicas, least-submitted slot first.

    With all slots routable from the start this is the textbook
    round robin (0, 1, ..., N-1, 0, ...); after a drain/swap the
    slot-persistent counters keep the cycle fair instead of flooding
    the newest engine.
    """

    @property
    def name(self) -> str:
        return "round-robin"

    def select(self, replicas: Sequence[ReplicaView]) -> int:
        self._require(replicas)
        return min(replicas, key=lambda r: (r.submitted, r.index)).index


@dataclass(frozen=True)
class LeastInFlightRouting(RoutingPolicy):
    """Join the shortest queue: the replica with the fewest in-flight
    requests wins (ties broken by fewest-ever-submitted, then slot
    order, keeping the choice deterministic)."""

    @property
    def name(self) -> str:
        return "least-in-flight"

    def select(self, replicas: Sequence[ReplicaView]) -> int:
        self._require(replicas)
        return min(replicas,
                   key=lambda r: (r.in_flight, r.submitted, r.index)).index


@dataclass(frozen=True)
class WeightedQPSRouting(RoutingPolicy):
    """Deterministic weighted round robin over the replicas' QPS
    weights: the next request goes to the slot whose
    ``(submitted + 1) / weight`` is smallest, so long-run traffic
    shares converge to the weights without randomness."""

    @property
    def name(self) -> str:
        return "weighted-qps"

    def select(self, replicas: Sequence[ReplicaView]) -> int:
        self._require(replicas)
        for view in replicas:
            if view.weight <= 0:
                raise ConfigError(
                    f"replica {view.index} has non-positive routing "
                    f"weight {view.weight}")
        return min(replicas,
                   key=lambda r: ((r.submitted + 1) / r.weight,
                                  r.index)).index


#: Named routing policies for the CLI / config front-ends. Values are
#: zero-argument factories returning the default-configured policy.
ROUTING_POLICIES: Dict[str, Callable[[], RoutingPolicy]] = {
    "round-robin": RoundRobinRouting,
    "least-in-flight": LeastInFlightRouting,
    "weighted-qps": WeightedQPSRouting,
}


def resolve_routing_policy(
        policy: Union[None, str, RoutingPolicy]) -> RoutingPolicy:
    """Normalize a routing-policy argument (None/name/instance)."""
    if policy is None:
        return RoundRobinRouting()
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return ROUTING_POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted(ROUTING_POLICIES))
        raise ConfigError(
            f"unknown routing policy {policy!r}; known: {known}"
        ) from None
