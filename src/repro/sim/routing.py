"""Pluggable request-routing policies for the multi-replica fleet.

A :class:`~repro.sim.fleet.FleetEngine` fronts N serving-engine
replicas; which replica a new arrival lands on is this module's
decision point, mirroring the :mod:`repro.sim.policies` pattern: each
policy is a stateless frozen dataclass, a named registry
(``ROUTING_POLICIES``) backs the CLI's ``--routing`` selection, and
:func:`resolve_routing_policy` normalizes None/name/instance
arguments.

Policies are pure functions of the candidate replicas' observable
state (:class:`ReplicaView`): in-flight depth, how many requests the
slot has ever been routed, and an analytical-QPS weight. The fleet
owns the counters, so the static policies are stateless and one
instance can serve many fleets.

Variants:

* :class:`RoundRobinRouting` -- cycle the candidates (least-submitted
  first), the classic fair splitter; on a homogeneous fleet it
  partitions a trace into exact every-Nth subsequences.
* :class:`LeastInFlightRouting` -- join the shortest queue, the
  greedy load balancer that adapts to decode-length skew.
* :class:`WeightedQPSRouting` -- deterministic weighted round robin:
  each replica receives traffic proportional to its schedule's
  analytical saturation QPS, the right default for heterogeneous
  fleets.

The latency-aware variants model what a *distributed* balancer can
actually observe -- sampled, possibly stale queue state -- instead of
the oracle view the static policies enjoy:

* :class:`PowerOfTwoChoicesRouting` -- sample two replicas with a
  seeded RNG, join the shorter queue; ``stale_after`` serves cached
  queue depths for that many seconds before refreshing, reproducing
  the stale-state balancing the mesh literature studies.
* :class:`JoinIdleQueueRouting` -- route to an idle replica when one
  exists, fall back to the shortest queue otherwise (the JIQ
  decoupling of idleness tracking from dispatch).
* :class:`SessionAffineRouting` -- sticky sessions: the first request
  of a session lands on the least-loaded replica and every later
  request of that session follows it (re-pinning only when the sticky
  replica leaves the routable set), modeling KV-cache / prefix-cache
  affinity for multi-turn users.

These two keep per-instance state (an RNG, a state cache), so a fresh
instance per fleet -- what the registry factories and
:func:`resolve_routing_policy` hand out -- is the supported usage.
All randomness flows from the policy's injected ``seed`` through a
:class:`~repro.sim.rng.DeterministicRNG` -- simulation paths never
touch the process-global RNG (the ``seeded-rng-required`` lint rule
pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.sim.rng import DeterministicRNG

__all__ = [
    "ReplicaView",
    "RoutingPolicy",
    "RoundRobinRouting",
    "LeastInFlightRouting",
    "WeightedQPSRouting",
    "PowerOfTwoChoicesRouting",
    "JoinIdleQueueRouting",
    "SessionAffineRouting",
    "ROUTING_POLICIES",
    "resolve_routing_policy",
]


@dataclass(frozen=True)
class ReplicaView:
    """What a routing policy may observe about one candidate replica.

    Attributes:
        index: The replica's fleet slot.
        in_flight: Requests submitted to the slot but not finished.
        submitted: Requests ever routed to the slot (persists across
            rolling schedule swaps, so a freshly swapped-in engine is
            not flooded to "catch up").
        weight: Relative capacity, normally the schedule's analytical
            saturation QPS (1.0 when unknown). Only weighted policies
            read it.
    """

    index: int
    in_flight: int
    submitted: int
    weight: float = 1.0


@dataclass(frozen=True)
class RoutingPolicy:
    """Picks which replica receives the next arrival.

    Subclasses override :meth:`select`; candidates are the fleet's
    **routable** replicas only (draining and retired slots are never
    offered).
    """

    @property
    def name(self) -> str:
        """Registry name (kebab-case class name by default)."""
        return type(self).__name__.replace("Routing", "").lower()

    def select(self, replicas: Sequence[ReplicaView],
               now: float = 0.0, *,
               session_key: Optional[str] = None) -> int:
        """The chosen replica's ``index`` among ``replicas``.

        Args:
            replicas: Views of every routable replica, slot order.
            now: Simulated time of the routing decision; only the
                staleness-aware policies read it.
            session_key: Sticky-routing key of the arrival (its
                session id), when the workload carries one; only
                affinity-aware policies read it.

        Raises:
            ConfigError: when no replica is routable.
        """
        raise NotImplementedError

    @staticmethod
    def _require(replicas: Sequence[ReplicaView]) -> None:
        if not replicas:
            raise ConfigError("no routable replica: every fleet slot is "
                              "draining or retired")


@dataclass(frozen=True)
class RoundRobinRouting(RoutingPolicy):
    """Cycle through the replicas, least-submitted slot first.

    With all slots routable from the start this is the textbook
    round robin (0, 1, ..., N-1, 0, ...); after a drain/swap the
    slot-persistent counters keep the cycle fair instead of flooding
    the newest engine.
    """

    @property
    def name(self) -> str:
        return "round-robin"

    def select(self, replicas: Sequence[ReplicaView],
               now: float = 0.0, *,
               session_key: Optional[str] = None) -> int:
        self._require(replicas)
        return min(replicas, key=lambda r: (r.submitted, r.index)).index


@dataclass(frozen=True)
class LeastInFlightRouting(RoutingPolicy):
    """Join the shortest queue: the replica with the fewest in-flight
    requests wins (ties broken by fewest-ever-submitted, then slot
    order, keeping the choice deterministic)."""

    @property
    def name(self) -> str:
        return "least-in-flight"

    def select(self, replicas: Sequence[ReplicaView],
               now: float = 0.0, *,
               session_key: Optional[str] = None) -> int:
        self._require(replicas)
        return min(replicas,
                   key=lambda r: (r.in_flight, r.submitted, r.index)).index


@dataclass(frozen=True)
class WeightedQPSRouting(RoutingPolicy):
    """Deterministic weighted round robin over the replicas' QPS
    weights: the next request goes to the slot whose
    ``(submitted + 1) / weight`` is smallest, so long-run traffic
    shares converge to the weights without randomness."""

    @property
    def name(self) -> str:
        return "weighted-qps"

    def select(self, replicas: Sequence[ReplicaView],
               now: float = 0.0, *,
               session_key: Optional[str] = None) -> int:
        self._require(replicas)
        for view in replicas:
            if view.weight <= 0:
                raise ConfigError(
                    f"replica {view.index} has non-positive routing "
                    f"weight {view.weight}")
        return min(replicas,
                   key=lambda r: ((r.submitted + 1) / r.weight,
                                  r.index)).index


@dataclass(frozen=True, eq=False)
class PowerOfTwoChoicesRouting(RoutingPolicy):
    """Sample two replicas, join the shorter queue -- on possibly
    stale state.

    The classic power-of-two-choices balancer: two candidates are
    drawn with a seeded RNG and the one with fewer in-flight requests
    wins (ties by fewest-ever-submitted, then slot order). With
    ``stale_after > 0`` the policy consults a cached snapshot of the
    queue depths and only refreshes it once the snapshot is at least
    ``stale_after`` seconds old -- the "herd behavior under stale
    state" regime a real mesh balancer operates in. ``stale_after =
    0`` refreshes on every decision (perfect information), including
    decisions at the same instant.

    Runs are deterministic per seed: the same candidate sequence and
    decision times reproduce the same assignments.

    Attributes:
        seed: RNG seed for the two-candidate draw.
        stale_after: Seconds a cached queue-depth snapshot keeps
            serving decisions before it is refreshed.
    """

    seed: int = 0
    stale_after: float = 0.0
    _state: Dict[str, object] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.stale_after < 0:
            raise ConfigError("stale_after must be non-negative")

    @property
    def name(self) -> str:
        return "power-of-two-choices"

    def _snapshot(self, replicas: Sequence[ReplicaView],
                  now: float) -> Dict[int, int]:
        """The in-flight depths the policy is allowed to see at
        ``now``: live state once the cached snapshot has aged past
        ``stale_after`` (or a slot appeared/vanished), the cached copy
        otherwise."""
        cached = self._state.get("depths")
        taken = self._state.get("taken_at")
        # Serve the cached snapshot without materializing the live
        # depths at all (slot indices are unique, so length plus
        # subset is set equality) -- stale-state routing would
        # otherwise allocate a throwaway dict per arrival.
        if (cached is not None and taken is not None and now >= taken
                and now - taken < self.stale_after
                and len(cached) == len(replicas)
                and all(view.index in cached for view in replicas)):
            return cached
        live = {view.index: view.in_flight for view in replicas}
        self._state["depths"] = live
        self._state["taken_at"] = now
        return live

    def select(self, replicas: Sequence[ReplicaView],
               now: float = 0.0, *,
               session_key: Optional[str] = None) -> int:
        self._require(replicas)
        rng = self._state.get("rng")
        if rng is None:
            rng = DeterministicRNG(self.seed)
            self._state["rng"] = rng
        depths = self._snapshot(replicas, now)
        by_index = {view.index: view for view in replicas}
        indices = sorted(by_index)
        if len(indices) == 1:
            return indices[0]
        first, second = (indices[slot]
                         for slot in rng.sample_pair(len(indices)))
        return min(
            (first, second),
            key=lambda i: (depths[i], by_index[i].submitted, i))


@dataclass(frozen=True)
class JoinIdleQueueRouting(RoutingPolicy):
    """Route to an idle replica when one exists; otherwise join the
    shortest queue.

    The join-idle-queue discipline decouples "who is idle" from the
    dispatch decision: as long as any replica sits idle an arrival
    never queues behind busy ones (idle ties break by
    fewest-ever-submitted so the idle set is drained fairly); only
    when the whole fleet is busy does it degrade to
    least-in-flight."""

    @property
    def name(self) -> str:
        return "join-idle-queue"

    def select(self, replicas: Sequence[ReplicaView],
               now: float = 0.0, *,
               session_key: Optional[str] = None) -> int:
        self._require(replicas)
        idle = [view for view in replicas if view.in_flight == 0]
        candidates = idle or replicas
        return min(candidates,
                   key=lambda r: (r.in_flight, r.submitted, r.index)).index


@dataclass(frozen=True, eq=False)
class SessionAffineRouting(RoutingPolicy):
    """Sticky sessions with a least-in-flight fallback.

    The first request of a session joins the shortest queue (the
    least-in-flight discipline, ties by fewest-ever-submitted then
    slot order) and the session is **pinned** there: every later
    request carrying the same ``session_key`` follows, regardless of
    load, modeling the KV-cache / prefix-cache affinity a multi-turn
    deployment wants. Only when the pinned replica leaves the
    routable set (drained or retired) is the session re-pinned, again
    to the shortest queue. Keyless arrivals fall back to plain
    least-in-flight.

    The pin table is explicit per-instance state -- not a hash of the
    key, which Python randomizes per process -- so runs are
    deterministic and a fresh instance per fleet (what the registry
    factory hands out) is the supported usage.
    """

    _state: Dict[str, object] = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        return "session-affine"

    def select(self, replicas: Sequence[ReplicaView],
               now: float = 0.0, *,
               session_key: Optional[str] = None) -> int:
        self._require(replicas)
        if session_key is None:
            return min(replicas, key=lambda r: (r.in_flight, r.submitted,
                                                r.index)).index
        sticky = self._state.get("sticky")
        if sticky is None:
            sticky = {}
            self._state["sticky"] = sticky
        pinned = sticky.get(session_key)
        if pinned is not None:
            for view in replicas:
                if view.index == pinned:
                    return pinned
        choice = min(replicas, key=lambda r: (r.in_flight, r.submitted,
                                              r.index)).index
        sticky[session_key] = choice
        return choice


#: Named routing policies for the CLI / config front-ends. Values are
#: zero-argument factories returning the default-configured policy.
ROUTING_POLICIES: Dict[str, Callable[[], RoutingPolicy]] = {
    "round-robin": RoundRobinRouting,
    "least-in-flight": LeastInFlightRouting,
    "weighted-qps": WeightedQPSRouting,
    "power-of-two-choices": PowerOfTwoChoicesRouting,
    "join-idle-queue": JoinIdleQueueRouting,
    "session-affine": SessionAffineRouting,
}


def resolve_routing_policy(
        policy: Union[None, str, RoutingPolicy]) -> RoutingPolicy:
    """Normalize a routing-policy argument (None/name/instance)."""
    if policy is None:
        return RoundRobinRouting()
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return ROUTING_POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted(ROUTING_POLICIES))
        raise ConfigError(
            f"unknown routing policy {policy!r}; known: {known}"
        ) from None
