"""Open-loop driver over the incremental serving engine.

:class:`ServingSimulator` is the batch front door to the request-level
DES: it validates a whole workload up front, submits every request to a
fresh :class:`~repro.sim.engine.ServingEngine`, drains it, and returns
the aggregate artifact -- :class:`~repro.sim.metrics.ServingMetrics`
for bare arrival lists (legacy API) or a
:class:`~repro.sim.metrics.ServingReport` for a
:class:`~repro.workloads.traces.RequestTrace` (the artifact behind
``repro replay``).

The queueing network itself -- placement-group resources, batch
stations, the continuous-batching decode executor, pluggable
dispatch/admission policies -- lives in :mod:`repro.sim.engine`; this
module adds only the one-shot replay discipline. Replays through the
engine are bit-identical to the pre-refactor monolithic simulator
(pinned by regression tests), and the same engine also powers the live
asyncio front-end in :mod:`repro.serve`.

Iterative-retrieval schemas (Case III) run through the engine's
retrieval-hook and re-prefix stations; the closed-form counterpart is
the cohort model in :mod:`repro.pipeline.iterative`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import ConfigError
from repro.pipeline.assembly import Schedule
from repro.pipeline.stage_perf import RAGPerfModel
from repro.sim.engine import DispatchSelection, ServingEngine
from repro.sim.metrics import (
    LiveSnapshot,
    MetricsAccumulator,
    RequestRecord,
    ServingMetrics,
    ServingReport,
    SLOTarget,
    _interpolated_percentile,
    _latency_summary,
)
from repro.sim.policies import AdmissionPolicy
from repro.workloads.traces import RequestTrace

__all__ = [
    "ServingSimulator",
    "RequestRecord",
    "ServingMetrics",
    "ServingReport",
    "SLOTarget",
    "LiveSnapshot",
    "MetricsAccumulator",
    "DispatchSelection",
    "_interpolated_percentile",
    "_latency_summary",
]


class ServingSimulator:
    """Simulate one schedule serving a stream of requests.

    Args:
        perf_model: Calibrated stage cost models.
        schedule: The deployment under test.
        max_wait: Legacy global partial-batch deadline; fills in any
            dispatch policy whose own ``max_wait`` is unset (per-stage
            batch latency when both are None).
        seed: Seed for the iterative retrieval-position sampler.
        dispatch: Dispatch policy for the pre-decode stations -- a
            policy instance, a registry name, or a per-stage mapping
            (deadline flush when omitted).
        admission: Decode admission policy instance or registry name
            (greedy when omitted).
        fast: Use the engine's slab-backed hot path (the default);
            ``False`` replays through the closure-per-event oracle.
        fast_forward: Fluid-skip idle decode boundaries on sparse
            workloads (requires ``fast``; see
            :class:`~repro.sim.engine.ServingEngine`).
    """

    def __init__(self, perf_model: RAGPerfModel, schedule: Schedule,
                 max_wait: Optional[float] = None, seed: int = 0,
                 dispatch: DispatchSelection = None,
                 admission: Union[None, str, AdmissionPolicy] = None,
                 fast: bool = True, fast_forward: bool = False) -> None:
        self._perf_model = perf_model
        self._schedule = schedule
        self._schema = perf_model.schema
        self._max_wait = max_wait
        self._seed = seed
        self._dispatch = dispatch
        self._admission = admission
        self._fast = fast
        self._fast_forward = fast_forward
        # Engines are single-use; build one eagerly so schedule/schema
        # validation still fails at construction time, as it always has.
        self._engine: Optional[ServingEngine] = self._fresh_engine()

    def _fresh_engine(self) -> ServingEngine:
        return ServingEngine(self._perf_model, self._schedule,
                             max_wait=self._max_wait, seed=self._seed,
                             dispatch=self._dispatch,
                             admission=self._admission,
                             fast=self._fast,
                             fast_forward=self._fast_forward)

    def _take_engine(self) -> ServingEngine:
        """The pre-built engine, or a fresh one on repeated runs."""
        engine, self._engine = self._engine, None
        if engine is None or engine.offered:
            engine = self._fresh_engine()
        return engine

    def run(self, workload: Union[RequestTrace, Sequence[float]],
            horizon: Optional[float] = None,
            decode_lengths: Optional[Sequence[int]] = None,
            slo: Optional[SLOTarget] = None,
            ) -> Union[ServingMetrics, ServingReport]:
        """Inject requests and simulate to completion.

        Args:
            workload: A :class:`~repro.workloads.traces.RequestTrace`
                (per-request decode lengths and metadata travel inside
                it) or bare sorted arrival timestamps in seconds.
            horizon: Optional hard stop; unfinished requests are dropped
                from the completed statistics.
            decode_lengths: Optional per-request generation lengths for
                the bare-arrivals form (same order as the arrivals);
                None uses the workload profile's decode length.
            slo: Latency targets for attainment accounting (trace
                workloads only; defaults to unconstrained).

        Returns:
            A :class:`ServingReport` for a trace workload, a
            :class:`ServingMetrics` for bare arrivals.

        Raises:
            ConfigError: on empty/unsorted arrivals, mismatched
                decode-length counts, or a trace replay in which zero
                requests finish before the horizon.
        """
        if isinstance(workload, RequestTrace):
            if decode_lengths is not None:
                raise ConfigError(
                    "decode_lengths travel inside the trace; do not pass "
                    "both")
            engine = self._replay(list(workload.arrivals), horizon,
                                  workload.decode_lens,
                                  requests=(workload.requests
                                            if workload.has_identity
                                            else None))
            return engine.report(workload, slo or SLOTarget())
        if slo is not None:
            raise ConfigError(
                "SLO accounting needs a RequestTrace workload")
        return self._replay(workload, horizon, decode_lengths).metrics()

    def _replay(self, arrivals: Sequence[float], horizon: Optional[float],
                decode_lengths: Optional[Sequence[int]],
                requests: Optional[Sequence] = None) -> ServingEngine:
        """Open-loop drive: submit the whole workload, then run.

        ``requests`` carries the trace's identity-bearing records when
        the workload has them; anonymous replays leave it None and pay
        no per-submission identity lookups.
        """
        if not arrivals:
            raise ConfigError("need at least one arrival")
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ConfigError("arrivals must be sorted")
        if decode_lengths is not None:
            if len(decode_lengths) != len(arrivals):
                raise ConfigError(
                    "decode_lengths must match arrivals in length")
            if any(length <= 0 for length in decode_lengths):
                raise ConfigError("decode lengths must be positive")
        engine = self._take_engine()
        if requests is not None:
            for request in requests:
                engine.submit(request.arrival,
                              decode_len=request.decode_len,
                              user_id=request.user_id,
                              session_id=request.session_id,
                              tier=request.tier)
        else:
            for index, time in enumerate(arrivals):
                engine.submit(time,
                              decode_len=None if decode_lengths is None
                              else int(decode_lengths[index]))
        if horizon is not None:
            engine.step(until=horizon)
        else:
            engine.drain()
        return engine
