"""Request-level RAG serving simulator.

Builds a queueing network from a :class:`~repro.pipeline.Schedule`:

* every placement group becomes one *resource*; the group's stages are
  batch stations that serialize on it (time multiplexing, §6.1),
* retrieval is a station on its own CPU-server resource -- so a
  collocated group spanning retrieval naturally idles while requests
  are out at the retrieval tier, reproducing the paper's stall rule,
* decode is a continuous-batching executor: sequences join the running
  batch at step boundaries and leave after ``decode_len`` steps.

Stage *service times* come from the analytical cost models; the DES adds
queueing, batching and admission dynamics. *When* a station fires and
*who* joins the decode batch are pluggable policies
(:mod:`repro.sim.policies`); the defaults -- deadline flush and greedy
admission -- reproduce the paper's serving model (batches dispatch when
full, or when a station has waited ``max_wait`` with a partial batch,
so tails cannot deadlock).

Workloads arrive either as bare arrival lists (legacy API, returns
:class:`ServingMetrics`) or as a
:class:`~repro.workloads.traces.RequestTrace`, in which case
:meth:`ServingSimulator.run` returns a :class:`ServingReport` --
SLO attainment, interpolated latency percentiles and per-stage queueing
breakdowns -- the artifact behind ``repro replay``.

Iterative-retrieval schemas are handled by the dedicated cohort model in
:mod:`repro.pipeline.iterative`; this simulator rejects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.errors import ConfigError
from repro.pipeline.assembly import Schedule, derive_retrieval_servers
from repro.pipeline.stage_perf import RAGPerfModel
from repro.schema.stages import Stage, pipeline_stages
from repro.sim.engine import Simulation
from repro.sim.policies import (
    AdmissionPolicy,
    DispatchPolicy,
    resolve_admission_policy,
    resolve_dispatch_policy,
)
from repro.workloads.traces import RequestTrace

#: Per-stage dispatch selection: one policy (or registry name) for all
#: stages, or a mapping from stage to policy/name.
DispatchSelection = Union[None, str, DispatchPolicy,
                          Mapping[Stage, Union[str, DispatchPolicy]]]


@dataclass
class RequestRecord:
    """Lifecycle of one request through the simulated deployment.

    Attributes:
        request_id: Arrival index.
        arrival: Arrival time in seconds.
        decode_len: Tokens this request generates (the workload profile's
            decode length unless per-request lengths were supplied).
        stage_completions: Completion time per pipeline stage.
        stage_enqueues: Last enqueue time per stage (queueing bookkeeping).
        queue_waits: Accumulated queueing delay per stage (a stage visited
            repeatedly, e.g. iterative re-prefix, accumulates).
        first_token_time: When the prefix stage finished (first token).
        completion_time: When the last decode step finished.
    """

    request_id: int
    arrival: float
    decode_len: int = 0
    stage_completions: Dict[Stage, float] = field(default_factory=dict)
    stage_enqueues: Dict[Stage, float] = field(default_factory=dict)
    queue_waits: Dict[Stage, float] = field(default_factory=dict)
    first_token_time: Optional[float] = None
    completion_time: Optional[float] = None

    @property
    def ttft(self) -> Optional[float]:
        """Seconds from arrival to first token (None if unfinished)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival

    @property
    def tpot(self) -> Optional[float]:
        """Mean seconds per generated token (None if unfinished)."""
        if self.completion_time is None or self.first_token_time is None:
            return None
        return (self.completion_time - self.first_token_time) \
            / max(self.decode_len, 1)


@dataclass
class ServingMetrics:
    """Aggregate results of one simulation run.

    Attributes:
        completed: Requests that finished decoding.
        offered: Requests injected.
        duration: Seconds from first arrival to last completion.
        throughput: Completed requests per second over ``duration``.
        mean_ttft / p99_ttft: TTFT statistics over completed requests.
        mean_tpot: Mean (completion - first token) / decode_len.
        utilization: Busy-time fraction per pre-decode resource over the
            run (group name -> [0, 1]); shows which tier the schedule
            actually saturates.
        records: Per-request lifecycles.
    """

    completed: int
    offered: int
    duration: float
    throughput: float
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    utilization: Dict[str, float] = field(default_factory=dict)
    records: List[RequestRecord] = field(repr=False, default_factory=list)


@dataclass(frozen=True)
class SLOTarget:
    """Per-request latency targets a served request must meet.

    Attributes:
        ttft: TTFT target in seconds (None = dimension unconstrained).
        tpot: TPOT target in seconds (None = dimension unconstrained).
    """

    ttft: Optional[float] = None
    tpot: Optional[float] = None

    def __post_init__(self) -> None:
        for name, value in (("ttft", self.ttft), ("tpot", self.tpot)):
            if value is not None and value <= 0:
                raise ConfigError(f"SLO {name} must be positive when set")


def _interpolated_percentile(sorted_values: Sequence[float],
                             fraction: float) -> float:
    """Linear-interpolated percentile over pre-sorted values.

    Raises:
        ConfigError: on an empty sample (degenerate runs must surface
            as configuration errors, not index errors).
    """
    if not sorted_values:
        raise ConfigError("cannot take a percentile of zero samples")
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError("percentile fraction must be in [0, 1]")
    rank = fraction * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) \
        + sorted_values[high] * weight


def _latency_summary(sorted_values: Sequence[float]) -> Dict[str, float]:
    return {
        "mean": sum(sorted_values) / len(sorted_values),
        "p50": _interpolated_percentile(sorted_values, 0.50),
        "p95": _interpolated_percentile(sorted_values, 0.95),
        "p99": _interpolated_percentile(sorted_values, 0.99),
    }


@dataclass(frozen=True)
class ServingReport:
    """Scenario-level outcome of replaying a trace through a schedule.

    The serializable artifact behind ``repro replay``: aggregates only
    (``records`` ride along for programmatic drill-down but are
    excluded from equality and from the :mod:`repro.config` envelope).

    Attributes:
        scenario: The trace's generating scenario name.
        offered / completed: Requests injected / finished.
        duration: Seconds from first arrival to last completion.
        throughput: Completed requests per second.
        slo: The targets attainment was measured against.
        slo_attainment: Fraction of completed requests meeting the
            ``ttft`` target, the ``tpot`` target, and both (``joint``).
            An unconstrained dimension counts as met.
        ttft / tpot: mean/p50/p95/p99 latency summaries (interpolated
            percentiles, seconds).
        queueing: Per-stage queue-wait breakdown (stage name ->
            mean/p95/max wait in seconds) over completed requests.
        utilization: Busy-time fraction per pre-decode resource.
        trace_metadata: The replayed trace's metadata, for provenance.
        records: Per-request lifecycles (not serialized, not compared).
    """

    scenario: str
    offered: int
    completed: int
    duration: float
    throughput: float
    slo: SLOTarget
    slo_attainment: Dict[str, float]
    ttft: Dict[str, float]
    tpot: Dict[str, float]
    queueing: Dict[str, Dict[str, float]]
    utilization: Dict[str, float]
    trace_metadata: Dict[str, Any] = field(default_factory=dict)
    records: List[RequestRecord] = field(default_factory=list,
                                         repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.completed < 0 or self.offered < 0:
            raise ConfigError("request counts must be non-negative")

    @property
    def completion_rate(self) -> float:
        """Fraction of offered requests that finished."""
        return self.completed / self.offered if self.offered else 0.0


class _Resource:
    """A set of chips (or servers) that one batch occupies at a time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy = False
        self.stations: List["_BatchStation"] = []
        self.busy_time = 0.0

    def release(self, sim: Simulation) -> None:
        self.busy = False
        for station in self.stations:
            station.try_dispatch(sim)
            if self.busy:
                break


class _BatchStation:
    """One pipeline stage batching requests on a shared resource.

    A batch occupies the resource for its *initiation interval*
    (``batch / throughput``): pipeline-parallel prefill overlaps
    consecutive batches, so the resource frees before the batch's full
    latency has elapsed; results are delivered at the latency.

    When to fire and how much to take are delegated to a
    :class:`~repro.sim.policies.DispatchPolicy` (already resolved
    against this stage's default deadline).
    """

    def __init__(self, stage: Stage, batch_size: int,
                 perf_fn: Callable[[int], "object"], resource: _Resource,
                 deliver: Callable[[Simulation, RequestRecord], None],
                 policy: DispatchPolicy) -> None:
        self.stage = stage
        self.batch_size = batch_size
        self.perf_fn = perf_fn
        self.resource = resource
        self.deliver = deliver
        self.policy = policy
        self.queue: List[RequestRecord] = []
        self._oldest_enqueue: Optional[float] = None
        self._flush_scheduled = False
        resource.stations.append(self)

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self.queue.append(record)
        record.stage_enqueues[self.stage] = sim.now
        if self._oldest_enqueue is None:
            self._oldest_enqueue = sim.now
        self.try_dispatch(sim)

    def try_dispatch(self, sim: Simulation) -> None:
        if self.resource.busy or not self.queue:
            return
        waited = sim.now - self._oldest_enqueue
        take = self.policy.take(len(self.queue), self.batch_size, waited)
        if take > 0:
            self._dispatch(sim, take)
        elif not self._flush_scheduled:
            delay = self.policy.flush_delay(waited)
            if delay is not None:
                self._flush_scheduled = True
                sim.schedule(max(delay, 0.0), self._flush)

    def _flush(self, sim: Simulation) -> None:
        # Force-dispatch the partial batch (float rounding must not turn
        # the staleness check into a zero-delay reschedule loop).
        self._flush_scheduled = False
        if not self.resource.busy and self.queue:
            self._dispatch(sim, self.policy.flush_take(len(self.queue),
                                                       self.batch_size))

    def _dispatch(self, sim: Simulation, take: int) -> None:
        batch = self.queue[:take]
        del self.queue[:take]
        for record in batch:
            enqueued = record.stage_enqueues.get(self.stage, sim.now)
            record.queue_waits[self.stage] = \
                record.queue_waits.get(self.stage, 0.0) \
                + (sim.now - enqueued)
        self._oldest_enqueue = sim.now if self.queue else None
        self.resource.busy = True
        perf = self.perf_fn(take)
        latency = perf.latency
        occupancy = min(take / perf.request_qps, latency)
        self.resource.busy_time += occupancy

        def free(sim_: Simulation) -> None:
            self.resource.release(sim_)

        def complete(sim_: Simulation, batch_=batch) -> None:
            for record in batch_:
                record.stage_completions[self.stage] = sim_.now
            for record in batch_:
                self.deliver(sim_, record)

        sim.schedule(occupancy, free)
        sim.schedule(latency, complete)


class _DecodeExecutor:
    """Continuous-batching decode: sequences join at step boundaries and
    leave after their own decode length (variable-length requests mix in
    the batch, which is why the paper reports worst-case TPOT).

    *Who* joins at a step boundary is the
    :class:`~repro.sim.policies.AdmissionPolicy`'s call.

    For iterative schemas (Case III), a sequence that hits one of its
    retrieval positions leaves the batch through ``retrieval_hook`` (to
    the retrieval + re-prefix stations) and re-joins via :meth:`accept`
    when the new context has been integrated.
    """

    def __init__(self, capacity: int, step_latency: float, decode_len: int,
                 on_complete: Callable[[Simulation, RequestRecord], None],
                 admission: AdmissionPolicy,
                 retrieval_hook: Optional[
                     Callable[[Simulation, RequestRecord], None]] = None,
                 positions_fn: Optional[
                     Callable[[RequestRecord], List[int]]] = None) -> None:
        self.capacity = capacity
        self.step_latency = step_latency
        self.decode_len = decode_len
        self.on_complete = on_complete
        self.admission = admission
        self.retrieval_hook = retrieval_hook
        self.positions_fn = positions_fn
        self.waiting: List[RequestRecord] = []
        self.remaining: List[List] = []  # [record, target]
        self.running = False
        self._progress: Dict[int, int] = {}
        self._positions: Dict[int, List[int]] = {}

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self.waiting.append(record)
        record.stage_enqueues[Stage.DECODE] = sim.now
        if not self.running:
            self.running = True
            sim.schedule(0.0, self._step)

    def _admit(self, now: float, record: RequestRecord) -> None:
        if record.request_id not in self._progress:
            self._progress[record.request_id] = 0
            if self.positions_fn is not None:
                self._positions[record.request_id] = list(
                    self.positions_fn(record))
            else:
                self._positions[record.request_id] = []
        enqueued = record.stage_enqueues.get(Stage.DECODE, now)
        record.queue_waits[Stage.DECODE] = \
            record.queue_waits.get(Stage.DECODE, 0.0) + (now - enqueued)
        target = record.decode_len or self.decode_len
        self.remaining.append([record, target])

    def _step(self, sim: Simulation) -> None:
        # Admit new sequences per the admission policy.
        if self.waiting:
            admitted = self.admission.admit(
                [record.decode_len or self.decode_len
                 for record in self.waiting],
                [entry[1] - self._progress[entry[0].request_id]
                 for entry in self.remaining],
                self.capacity)
            for _ in range(admitted):
                self._admit(sim.now, self.waiting.pop(0))
        if not self.remaining:
            self.running = False
            return

        def advance(sim_: Simulation) -> None:
            finished = []
            departing = []
            for entry in self.remaining:
                record = entry[0]
                self._progress[record.request_id] += 1
                done = self._progress[record.request_id]
                if done >= entry[1]:
                    finished.append(entry)
                    continue
                positions = self._positions[record.request_id]
                if positions and done >= positions[0]:
                    positions.pop(0)
                    departing.append(entry)
            for entry in finished:
                self.remaining.remove(entry)
                entry[0].completion_time = sim_.now
                self.on_complete(sim_, entry[0])
            for entry in departing:
                self.remaining.remove(entry)
                self.retrieval_hook(sim_, entry[0])
            self._step(sim_)

        sim.schedule(self.step_latency, advance)


class ServingSimulator:
    """Simulate one schedule serving a stream of requests.

    Args:
        perf_model: Calibrated stage cost models.
        schedule: The deployment under test.
        max_wait: Legacy global partial-batch deadline; fills in any
            dispatch policy whose own ``max_wait`` is unset (per-stage
            batch latency when both are None).
        seed: Seed for the iterative retrieval-position sampler.
        dispatch: Dispatch policy for the pre-decode stations -- a
            policy instance, a registry name, or a per-stage mapping
            (deadline flush when omitted).
        admission: Decode admission policy instance or registry name
            (greedy when omitted).
    """

    def __init__(self, perf_model: RAGPerfModel, schedule: Schedule,
                 max_wait: Optional[float] = None, seed: int = 0,
                 dispatch: DispatchSelection = None,
                 admission: Union[None, str, AdmissionPolicy] = None) -> None:
        self._perf_model = perf_model
        self._schedule = schedule
        self._schema = perf_model.schema
        self._servers = schedule.retrieval_servers
        if self._servers is None:
            self._servers = derive_retrieval_servers(perf_model, schedule)
        self._max_wait = max_wait
        self._seed = seed
        self._dispatch = dispatch
        self._admission = resolve_admission_policy(admission)
        self._records: List[RequestRecord] = []
        self._stations: Dict[Stage, _BatchStation] = {}
        self._decode: Optional[_DecodeExecutor] = None
        self._build()

    # ------------------------------------------------------------------

    def _stage_perf_fn(self, stage: Stage, resource_amount: int):
        plan = self._schedule.shard_plans.get(stage)

        def perf(batch: int):
            return self._perf_model.perf(stage, batch, resource_amount,
                                         plan=plan)

        return perf

    def _station_policy(self, stage: Stage,
                        default_wait: float) -> DispatchPolicy:
        """The stage's dispatch policy, resolved against its deadline.

        Deadline precedence: the policy's own ``max_wait``, then the
        simulator-wide ``max_wait`` argument, then the stage's batch
        latency.
        """
        selection = self._dispatch
        if isinstance(selection, Mapping):
            selection = selection.get(stage)
        policy = resolve_dispatch_policy(selection)
        if self._max_wait is not None:
            default_wait = self._max_wait
        return policy.resolve(default_wait)

    def _build(self) -> None:
        schema = self._schema
        stages = [stage for stage in pipeline_stages(schema)
                  if stage is not Stage.DECODE]
        resources: Dict[int, _Resource] = {}
        for index, group in enumerate(self._schedule.groups):
            resources[index] = _Resource(
                name="+".join(str(s) for s in group.stages))
        retrieval_resource = _Resource("retrieval-servers")
        self._resources = [res for res in resources.values()
                           if "decode" not in res.name]
        if schema.has_retrieval:
            self._resources.append(retrieval_resource)

        # Build stations back to front so each knows its successor.
        deliver_next = self._enter_decode
        for stage in reversed(stages):
            if stage is Stage.RETRIEVAL:
                resource = retrieval_resource
                amount = self._servers
            else:
                group_index = next(
                    i for i, group in enumerate(self._schedule.groups)
                    if stage in group.stages)
                resource = resources[group_index]
                amount = self._schedule.groups[group_index].num_xpus
            batch = self._schedule.batches[stage]
            perf_fn = self._stage_perf_fn(stage, amount)
            station = _BatchStation(
                stage=stage, batch_size=batch, perf_fn=perf_fn,
                resource=resource,
                deliver=self._make_deliver(stage, deliver_next),
                policy=self._station_policy(stage, perf_fn(batch).latency))
            self._stations[stage] = station
            deliver_next = station.accept
        self._entry = deliver_next

        decode_group = next(group for group in self._schedule.groups
                            if Stage.DECODE in group.stages)
        decode_batch = self._schedule.batches[Stage.DECODE]
        decode_perf = self._perf_model.perf(Stage.DECODE, decode_batch,
                                            decode_group.num_xpus)
        step_latency = decode_perf.latency / schema.sequences.decode_len

        retrieval_hook = None
        positions_fn = None
        if schema.is_iterative:
            # Iterative retrieval + re-prefix stations: retrieval shares
            # the CPU servers with the initial retrieval; the re-prefix
            # time-multiplexes the prefix group's chips (§6.1 [III]).
            iter_batch = (self._schedule.iterative_batch
                          or self._schedule.batches[Stage.RETRIEVAL])
            prefix_index = next(
                i for i, group in enumerate(self._schedule.groups)
                if Stage.PREFIX in group.stages)
            retrieval_perf_fn = self._stage_perf_fn(Stage.RETRIEVAL,
                                                    self._servers)
            prefix_perf_fn = self._stage_perf_fn(
                Stage.PREFIX, self._schedule.groups[prefix_index].num_xpus)
            iter_prefix = _BatchStation(
                stage=Stage.PREFIX, batch_size=iter_batch,
                perf_fn=prefix_perf_fn, resource=resources[prefix_index],
                deliver=lambda sim, record: self._decode.accept(sim, record),
                policy=self._station_policy(
                    Stage.PREFIX, prefix_perf_fn(iter_batch).latency))
            iter_retrieval = _BatchStation(
                stage=Stage.RETRIEVAL, batch_size=iter_batch,
                perf_fn=retrieval_perf_fn, resource=retrieval_resource,
                deliver=iter_prefix.accept,
                policy=self._station_policy(
                    Stage.RETRIEVAL, retrieval_perf_fn(iter_batch).latency))
            retrieval_hook = iter_retrieval.accept
            retrievals = schema.retrieval_frequency - 1
            base_seed = self._seed

            def positions_fn(record: RequestRecord):
                from repro.workloads.sequences import (
                    sample_retrieval_positions,
                )
                length = record.decode_len or schema.sequences.decode_len
                count = min(retrievals, max(length - 1, 0))
                return sample_retrieval_positions(
                    length, count, seed=base_seed + record.request_id)

        self._decode = _DecodeExecutor(
            capacity=decode_batch, step_latency=step_latency,
            decode_len=schema.sequences.decode_len,
            on_complete=lambda sim, record: None,
            admission=self._admission,
            retrieval_hook=retrieval_hook,
            positions_fn=positions_fn)

    def _make_deliver(self, stage: Stage, downstream):
        def deliver(sim: Simulation, record: RequestRecord) -> None:
            if stage is Stage.PREFIX and record.first_token_time is None:
                record.first_token_time = sim.now
            downstream(sim, record)

        return deliver

    def _enter_decode(self, sim: Simulation, record: RequestRecord) -> None:
        self._decode.accept(sim, record)

    # ------------------------------------------------------------------

    def run(self, workload: Union[RequestTrace, Sequence[float]],
            horizon: Optional[float] = None,
            decode_lengths: Optional[Sequence[int]] = None,
            slo: Optional[SLOTarget] = None,
            ) -> Union[ServingMetrics, ServingReport]:
        """Inject requests and simulate to completion.

        Args:
            workload: A :class:`~repro.workloads.traces.RequestTrace`
                (per-request decode lengths and metadata travel inside
                it) or bare sorted arrival timestamps in seconds.
            horizon: Optional hard stop; unfinished requests are dropped
                from the completed statistics.
            decode_lengths: Optional per-request generation lengths for
                the bare-arrivals form (same order as the arrivals);
                None uses the workload profile's decode length.
            slo: Latency targets for attainment accounting (trace
                workloads only; defaults to unconstrained).

        Returns:
            A :class:`ServingReport` for a trace workload, a
            :class:`ServingMetrics` for bare arrivals.

        Raises:
            ConfigError: on empty/unsorted arrivals, mismatched
                decode-length counts, or a trace replay in which zero
                requests finish before the horizon.
        """
        if isinstance(workload, RequestTrace):
            if decode_lengths is not None:
                raise ConfigError(
                    "decode_lengths travel inside the trace; do not pass "
                    "both")
            metrics = self._run(list(workload.arrivals), horizon,
                                workload.decode_lens)
            return self._report(metrics, workload, slo or SLOTarget())
        if slo is not None:
            raise ConfigError(
                "SLO accounting needs a RequestTrace workload")
        return self._run(workload, horizon, decode_lengths)

    def _run(self, arrivals: Sequence[float], horizon: Optional[float],
             decode_lengths: Optional[Sequence[int]]) -> ServingMetrics:
        if not arrivals:
            raise ConfigError("need at least one arrival")
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ConfigError("arrivals must be sorted")
        if decode_lengths is not None:
            if len(decode_lengths) != len(arrivals):
                raise ConfigError(
                    "decode_lengths must match arrivals in length")
            if any(length <= 0 for length in decode_lengths):
                raise ConfigError("decode lengths must be positive")
        sim = Simulation()
        self._records = []
        for resource in self._resources:
            resource.busy_time = 0.0
        default_len = self._schema.sequences.decode_len
        for index, time in enumerate(arrivals):
            length = decode_lengths[index] if decode_lengths is not None \
                else default_len
            record = RequestRecord(request_id=index, arrival=time,
                                   decode_len=int(length))
            self._records.append(record)
            sim.schedule_at(time, lambda s, r=record: self._entry(s, r))
        sim.run(until=horizon)
        return self._metrics(arrivals)

    def _metrics(self, arrivals: Sequence[float]) -> ServingMetrics:
        done = [r for r in self._records if r.completion_time is not None]
        ttfts = sorted(r.ttft for r in done if r.ttft is not None)
        if done and ttfts:
            last = max(r.completion_time for r in done)
            duration = max(last - arrivals[0], 1e-12)
            throughput = len(done) / duration
            mean_ttft = sum(ttfts) / len(ttfts)
            p99 = ttfts[min(int(0.99 * len(ttfts)), len(ttfts) - 1)]
            tpots = [(r.completion_time - r.first_token_time)
                     / max(r.decode_len, 1)
                     for r in done if r.first_token_time is not None]
            mean_tpot = sum(tpots) / len(tpots)
        else:
            duration = throughput = mean_ttft = p99 = mean_tpot = 0.0
        utilization = {}
        if duration > 0:
            utilization = {resource.name:
                           min(resource.busy_time / duration, 1.0)
                           for resource in self._resources}
        return ServingMetrics(
            completed=len(done),
            offered=len(self._records),
            duration=duration,
            throughput=throughput,
            mean_ttft=mean_ttft,
            p99_ttft=p99,
            mean_tpot=mean_tpot,
            utilization=utilization,
            records=self._records,
        )

    def _report(self, metrics: ServingMetrics, trace: RequestTrace,
                slo: SLOTarget) -> ServingReport:
        done = [r for r in metrics.records
                if r.completion_time is not None
                and r.first_token_time is not None]
        if not done:
            raise ConfigError(
                "zero requests finished the replay; raise the horizon or "
                "lower the offered load before asking for a report")
        ttfts = sorted(r.ttft for r in done)
        tpots = sorted(r.tpot for r in done)
        met_ttft = [slo.ttft is None or r.ttft <= slo.ttft for r in done]
        met_tpot = [slo.tpot is None or r.tpot <= slo.tpot for r in done]
        attainment = {
            "ttft": sum(met_ttft) / len(done),
            "tpot": sum(met_tpot) / len(done),
            "joint": sum(a and b for a, b in zip(met_ttft, met_tpot))
            / len(done),
        }
        queueing: Dict[str, Dict[str, float]] = {}
        stage_order = [stage for stage in pipeline_stages(self._schema)
                       if stage is not Stage.DECODE] + [Stage.DECODE]
        for stage in stage_order:
            waits = sorted(r.queue_waits[stage] for r in done
                           if stage in r.queue_waits)
            if not waits:
                continue
            queueing[stage.value] = {
                "mean_wait": sum(waits) / len(waits),
                "p95_wait": _interpolated_percentile(waits, 0.95),
                "max_wait": waits[-1],
            }
        return ServingReport(
            scenario=trace.scenario,
            offered=metrics.offered,
            completed=metrics.completed,
            duration=metrics.duration,
            throughput=metrics.throughput,
            slo=slo,
            slo_attainment=attainment,
            ttft=_latency_summary(ttfts),
            tpot=_latency_summary(tpots),
            queueing=queueing,
            utilization=dict(metrics.utilization),
            trace_metadata=dict(trace.metadata),
            records=metrics.records,
        )
