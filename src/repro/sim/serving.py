"""Request-level RAG serving simulator.

Builds a queueing network from a :class:`~repro.pipeline.Schedule`:

* every placement group becomes one *resource*; the group's stages are
  batch stations that serialize on it (time multiplexing, §6.1),
* retrieval is a station on its own CPU-server resource -- so a
  collocated group spanning retrieval naturally idles while requests
  are out at the retrieval tier, reproducing the paper's stall rule,
* decode is a continuous-batching executor: sequences join the running
  batch at step boundaries and leave after ``decode_len`` steps.

Stage *service times* come from the analytical cost models; the DES adds
queueing, batching and admission dynamics. Batches dispatch when full,
or when a station has waited ``max_wait`` with a partial batch (so tails
cannot deadlock).

Iterative-retrieval schemas are handled by the dedicated cohort model in
:mod:`repro.pipeline.iterative`; this simulator rejects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.pipeline.assembly import Schedule, derive_retrieval_servers
from repro.pipeline.stage_perf import RAGPerfModel
from repro.schema.stages import Stage, pipeline_stages
from repro.sim.engine import Simulation


@dataclass
class RequestRecord:
    """Lifecycle of one request through the simulated deployment.

    Attributes:
        request_id: Arrival index.
        arrival: Arrival time in seconds.
        decode_len: Tokens this request generates (the workload profile's
            decode length unless per-request lengths were supplied).
        stage_completions: Completion time per pipeline stage.
        first_token_time: When the prefix stage finished (first token).
        completion_time: When the last decode step finished.
    """

    request_id: int
    arrival: float
    decode_len: int = 0
    stage_completions: Dict[Stage, float] = field(default_factory=dict)
    first_token_time: Optional[float] = None
    completion_time: Optional[float] = None

    @property
    def ttft(self) -> Optional[float]:
        """Seconds from arrival to first token (None if unfinished)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival


@dataclass
class ServingMetrics:
    """Aggregate results of one simulation run.

    Attributes:
        completed: Requests that finished decoding.
        offered: Requests injected.
        duration: Seconds from first arrival to last completion.
        throughput: Completed requests per second over ``duration``.
        mean_ttft / p99_ttft: TTFT statistics over completed requests.
        mean_tpot: Mean (completion - first token) / decode_len.
        utilization: Busy-time fraction per pre-decode resource over the
            run (group name -> [0, 1]); shows which tier the schedule
            actually saturates.
        records: Per-request lifecycles.
    """

    completed: int
    offered: int
    duration: float
    throughput: float
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    utilization: Dict[str, float] = field(default_factory=dict)
    records: List[RequestRecord] = field(repr=False, default_factory=list)


class _Resource:
    """A set of chips (or servers) that one batch occupies at a time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy = False
        self.stations: List["_BatchStation"] = []
        self.busy_time = 0.0

    def release(self, sim: Simulation) -> None:
        self.busy = False
        for station in self.stations:
            station.try_dispatch(sim)
            if self.busy:
                break


class _BatchStation:
    """One pipeline stage batching requests on a shared resource.

    A batch occupies the resource for its *initiation interval*
    (``batch / throughput``): pipeline-parallel prefill overlaps
    consecutive batches, so the resource frees before the batch's full
    latency has elapsed; results are delivered at the latency.
    """

    def __init__(self, stage: Stage, batch_size: int,
                 perf_fn: Callable[[int], "object"], resource: _Resource,
                 deliver: Callable[[Simulation, RequestRecord], None],
                 max_wait: float) -> None:
        self.stage = stage
        self.batch_size = batch_size
        self.perf_fn = perf_fn
        self.resource = resource
        self.deliver = deliver
        self.max_wait = max_wait
        self.queue: List[RequestRecord] = []
        self._oldest_enqueue: Optional[float] = None
        self._flush_scheduled = False
        resource.stations.append(self)

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self.queue.append(record)
        if self._oldest_enqueue is None:
            self._oldest_enqueue = sim.now
        self.try_dispatch(sim)

    def try_dispatch(self, sim: Simulation) -> None:
        if self.resource.busy or not self.queue:
            return
        full = len(self.queue) >= self.batch_size
        stale = (self._oldest_enqueue is not None
                 and sim.now - self._oldest_enqueue >= self.max_wait)
        if full or stale:
            self._dispatch(sim)
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            wait = self.max_wait - (sim.now - self._oldest_enqueue)
            sim.schedule(max(wait, 0.0), self._flush)

    def _flush(self, sim: Simulation) -> None:
        # Force-dispatch the partial batch (float rounding must not turn
        # the staleness check into a zero-delay reschedule loop).
        self._flush_scheduled = False
        if not self.resource.busy and self.queue:
            self._dispatch(sim)

    def _dispatch(self, sim: Simulation) -> None:
        take = min(self.batch_size, len(self.queue))
        batch = self.queue[:take]
        del self.queue[:take]
        self._oldest_enqueue = sim.now if self.queue else None
        self.resource.busy = True
        perf = self.perf_fn(take)
        latency = perf.latency
        occupancy = min(take / perf.request_qps, latency)
        self.resource.busy_time += occupancy

        def free(sim_: Simulation) -> None:
            self.resource.release(sim_)

        def complete(sim_: Simulation, batch_=batch) -> None:
            for record in batch_:
                record.stage_completions[self.stage] = sim_.now
            for record in batch_:
                self.deliver(sim_, record)

        sim.schedule(occupancy, free)
        sim.schedule(latency, complete)


class _DecodeExecutor:
    """Continuous-batching decode: sequences join at step boundaries and
    leave after their own decode length (variable-length requests mix in
    the batch, which is why the paper reports worst-case TPOT).

    For iterative schemas (Case III), a sequence that hits one of its
    retrieval positions leaves the batch through ``retrieval_hook`` (to
    the retrieval + re-prefix stations) and re-joins via :meth:`accept`
    when the new context has been integrated.
    """

    def __init__(self, capacity: int, step_latency: float, decode_len: int,
                 on_complete: Callable[[Simulation, RequestRecord], None],
                 retrieval_hook: Optional[
                     Callable[[Simulation, RequestRecord], None]] = None,
                 positions_fn: Optional[
                     Callable[[RequestRecord], List[int]]] = None) -> None:
        self.capacity = capacity
        self.step_latency = step_latency
        self.decode_len = decode_len
        self.on_complete = on_complete
        self.retrieval_hook = retrieval_hook
        self.positions_fn = positions_fn
        self.waiting: List[RequestRecord] = []
        self.remaining: List[List] = []  # [record, tokens_done, target]
        self.running = False
        self._progress: Dict[int, int] = {}
        self._positions: Dict[int, List[int]] = {}

    def accept(self, sim: Simulation, record: RequestRecord) -> None:
        self.waiting.append(record)
        if not self.running:
            self.running = True
            sim.schedule(0.0, self._step)

    def _admit(self, record: RequestRecord) -> None:
        if record.request_id not in self._progress:
            self._progress[record.request_id] = 0
            if self.positions_fn is not None:
                self._positions[record.request_id] = list(
                    self.positions_fn(record))
            else:
                self._positions[record.request_id] = []
        target = record.decode_len or self.decode_len
        self.remaining.append([record, target])

    def _step(self, sim: Simulation) -> None:
        # Admit new sequences up to capacity.
        while self.waiting and len(self.remaining) < self.capacity:
            self._admit(self.waiting.pop(0))
        if not self.remaining:
            self.running = False
            return

        def advance(sim_: Simulation) -> None:
            finished = []
            departing = []
            for entry in self.remaining:
                record = entry[0]
                self._progress[record.request_id] += 1
                done = self._progress[record.request_id]
                if done >= entry[1]:
                    finished.append(entry)
                    continue
                positions = self._positions[record.request_id]
                if positions and done >= positions[0]:
                    positions.pop(0)
                    departing.append(entry)
            for entry in finished:
                self.remaining.remove(entry)
                entry[0].completion_time = sim_.now
                self.on_complete(sim_, entry[0])
            for entry in departing:
                self.remaining.remove(entry)
                self.retrieval_hook(sim_, entry[0])
            self._step(sim_)

        sim.schedule(self.step_latency, advance)


class ServingSimulator:
    """Simulate one schedule serving a stream of requests."""

    def __init__(self, perf_model: RAGPerfModel, schedule: Schedule,
                 max_wait: Optional[float] = None, seed: int = 0) -> None:
        self._perf_model = perf_model
        self._schedule = schedule
        self._schema = perf_model.schema
        self._servers = schedule.retrieval_servers
        if self._servers is None:
            self._servers = derive_retrieval_servers(perf_model, schedule)
        self._max_wait = max_wait
        self._seed = seed
        self._records: List[RequestRecord] = []
        self._stations: Dict[Stage, _BatchStation] = {}
        self._decode: Optional[_DecodeExecutor] = None
        self._build()

    # ------------------------------------------------------------------

    def _stage_perf_fn(self, stage: Stage, resource_amount: int):
        plan = self._schedule.shard_plans.get(stage)

        def perf(batch: int):
            return self._perf_model.perf(stage, batch, resource_amount,
                                         plan=plan)

        return perf

    def _build(self) -> None:
        schema = self._schema
        stages = [stage for stage in pipeline_stages(schema)
                  if stage is not Stage.DECODE]
        resources: Dict[int, _Resource] = {}
        for index, group in enumerate(self._schedule.groups):
            resources[index] = _Resource(
                name="+".join(str(s) for s in group.stages))
        retrieval_resource = _Resource("retrieval-servers")
        self._resources = [res for res in resources.values()
                           if "decode" not in res.name]
        if schema.has_retrieval:
            self._resources.append(retrieval_resource)

        # Build stations back to front so each knows its successor.
        deliver_next = self._enter_decode
        for stage in reversed(stages):
            if stage is Stage.RETRIEVAL:
                resource = retrieval_resource
                amount = self._servers
            else:
                group_index = next(
                    i for i, group in enumerate(self._schedule.groups)
                    if stage in group.stages)
                resource = resources[group_index]
                amount = self._schedule.groups[group_index].num_xpus
            batch = self._schedule.batches[stage]
            perf_fn = self._stage_perf_fn(stage, amount)
            max_wait = self._max_wait
            if max_wait is None:
                max_wait = perf_fn(batch).latency
            station = _BatchStation(
                stage=stage, batch_size=batch, perf_fn=perf_fn,
                resource=resource,
                deliver=self._make_deliver(stage, deliver_next),
                max_wait=max_wait)
            self._stations[stage] = station
            deliver_next = station.accept
        self._entry = deliver_next

        decode_group = next(group for group in self._schedule.groups
                            if Stage.DECODE in group.stages)
        decode_batch = self._schedule.batches[Stage.DECODE]
        decode_perf = self._perf_model.perf(Stage.DECODE, decode_batch,
                                            decode_group.num_xpus)
        step_latency = decode_perf.latency / schema.sequences.decode_len

        retrieval_hook = None
        positions_fn = None
        if schema.is_iterative:
            # Iterative retrieval + re-prefix stations: retrieval shares
            # the CPU servers with the initial retrieval; the re-prefix
            # time-multiplexes the prefix group's chips (§6.1 [III]).
            iter_batch = (self._schedule.iterative_batch
                          or self._schedule.batches[Stage.RETRIEVAL])
            prefix_index = next(
                i for i, group in enumerate(self._schedule.groups)
                if Stage.PREFIX in group.stages)
            retrieval_perf_fn = self._stage_perf_fn(Stage.RETRIEVAL,
                                                    self._servers)
            prefix_perf_fn = self._stage_perf_fn(
                Stage.PREFIX, self._schedule.groups[prefix_index].num_xpus)
            iter_prefix = _BatchStation(
                stage=Stage.PREFIX, batch_size=iter_batch,
                perf_fn=prefix_perf_fn, resource=resources[prefix_index],
                deliver=lambda sim, record: self._decode.accept(sim, record),
                max_wait=self._max_wait
                or prefix_perf_fn(iter_batch).latency)
            iter_retrieval = _BatchStation(
                stage=Stage.RETRIEVAL, batch_size=iter_batch,
                perf_fn=retrieval_perf_fn, resource=retrieval_resource,
                deliver=iter_prefix.accept,
                max_wait=self._max_wait
                or retrieval_perf_fn(iter_batch).latency)
            retrieval_hook = iter_retrieval.accept
            retrievals = schema.retrieval_frequency - 1
            base_seed = self._seed

            def positions_fn(record: RequestRecord):
                from repro.workloads.sequences import (
                    sample_retrieval_positions,
                )
                length = record.decode_len or schema.sequences.decode_len
                count = min(retrievals, max(length - 1, 0))
                return sample_retrieval_positions(
                    length, count, seed=base_seed + record.request_id)

        self._decode = _DecodeExecutor(
            capacity=decode_batch, step_latency=step_latency,
            decode_len=schema.sequences.decode_len,
            on_complete=lambda sim, record: None,
            retrieval_hook=retrieval_hook,
            positions_fn=positions_fn)

    def _make_deliver(self, stage: Stage, downstream):
        def deliver(sim: Simulation, record: RequestRecord) -> None:
            if stage is Stage.PREFIX and record.first_token_time is None:
                record.first_token_time = sim.now
            downstream(sim, record)

        return deliver

    def _enter_decode(self, sim: Simulation, record: RequestRecord) -> None:
        self._decode.accept(sim, record)

    # ------------------------------------------------------------------

    def run(self, arrivals: Sequence[float],
            horizon: Optional[float] = None,
            decode_lengths: Optional[Sequence[int]] = None) -> ServingMetrics:
        """Inject requests at the given times and simulate to completion.

        Args:
            arrivals: Sorted arrival timestamps in seconds.
            horizon: Optional hard stop; unfinished requests are dropped
                from the completed statistics.
            decode_lengths: Optional per-request generation lengths (same
                order as ``arrivals``); None uses the workload profile's
                decode length for every request.

        Raises:
            ConfigError: on empty/unsorted arrivals or mismatched
                decode-length counts.
        """
        if not arrivals:
            raise ConfigError("need at least one arrival")
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ConfigError("arrivals must be sorted")
        if decode_lengths is not None:
            if len(decode_lengths) != len(arrivals):
                raise ConfigError(
                    "decode_lengths must match arrivals in length")
            if any(length <= 0 for length in decode_lengths):
                raise ConfigError("decode lengths must be positive")
        sim = Simulation()
        self._records = []
        for resource in self._resources:
            resource.busy_time = 0.0
        default_len = self._schema.sequences.decode_len
        for index, time in enumerate(arrivals):
            length = decode_lengths[index] if decode_lengths is not None \
                else default_len
            record = RequestRecord(request_id=index, arrival=time,
                                   decode_len=int(length))
            self._records.append(record)
            sim.schedule_at(time, lambda s, r=record: self._entry(s, r))
        sim.run(until=horizon)
        return self._metrics(arrivals)

    def _metrics(self, arrivals: Sequence[float]) -> ServingMetrics:
        done = [r for r in self._records if r.completion_time is not None]
        ttfts = sorted(r.ttft for r in done if r.ttft is not None)
        if done:
            last = max(r.completion_time for r in done)
            duration = max(last - arrivals[0], 1e-12)
            throughput = len(done) / duration
            mean_ttft = sum(ttfts) / len(ttfts)
            p99 = ttfts[min(int(0.99 * len(ttfts)), len(ttfts) - 1)]
            tpots = [(r.completion_time - r.first_token_time)
                     / max(r.decode_len, 1)
                     for r in done if r.first_token_time is not None]
            mean_tpot = sum(tpots) / len(tpots)
        else:
            duration = throughput = mean_ttft = p99 = mean_tpot = 0.0
        utilization = {}
        if duration > 0:
            utilization = {resource.name:
                           min(resource.busy_time / duration, 1.0)
                           for resource in self._resources}
        return ServingMetrics(
            completed=len(done),
            offered=len(self._records),
            duration=duration,
            throughput=throughput,
            mean_ttft=mean_ttft,
            p99_ttft=p99,
            mean_tpot=mean_tpot,
            utilization=utilization,
            records=self._records,
        )
