"""Resource-allocation enumeration (§6.1 [II]).

XPU counts are assigned per placement group in powers-of-two scaling
factors (§4); an allocation is feasible when every group gets at least
the chips its largest model needs for weight capacity and the total stays
within the budget.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.errors import ConfigError


def power_of_two_options(minimum: int, maximum: int) -> List[int]:
    """Powers of two in ``[minimum, maximum]`` (minimum rounded up)."""
    if minimum <= 0 or maximum <= 0:
        raise ConfigError("bounds must be positive")
    options: List[int] = []
    value = 1
    while value < minimum:
        value *= 2
    while value <= maximum:
        options.append(value)
        value *= 2
    return options


def enumerate_allocations(group_minimums: Sequence[int],
                          budget: int) -> Iterator[Tuple[int, ...]]:
    """Yield power-of-two chip allocations per group within a budget.

    Args:
        group_minimums: Minimum chips each group needs (model capacity).
        budget: Total XPUs available.

    Yields:
        Tuples of chips per group, same order as ``group_minimums``.

    Raises:
        ConfigError: when even the minimums exceed the budget (no yield
            would ever happen -- surfacing it is friendlier).
    """
    if budget <= 0:
        raise ConfigError("budget must be positive")
    if not group_minimums:
        yield ()
        return
    floors = [power_of_two_options(minimum, budget)[0]
              if minimum <= budget else budget + 1
              for minimum in group_minimums]
    if sum(floors) > budget:
        raise ConfigError(
            f"group minimums {list(group_minimums)} cannot fit in a "
            f"{budget}-XPU budget"
        )

    def recurse(index: int, remaining: int) -> Iterator[Tuple[int, ...]]:
        floor_rest = sum(floors[index + 1:])
        options = power_of_two_options(group_minimums[index],
                                       remaining - floor_rest) \
            if remaining - floor_rest >= floors[index] else []
        for chips in options:
            if index == len(group_minimums) - 1:
                yield (chips,)
            else:
                for tail in recurse(index + 1, remaining - chips):
                    yield (chips,) + tail

    yield from recurse(0, budget)
