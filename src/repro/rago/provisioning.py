"""Capacity provisioning: the inverse scheduling problem.

RAGO answers "given resources, what is the best schedule?"; operators
usually ask the inverse: "given a target load and latency SLOs, how few
chips do I need?" Because a serving pipeline replicates horizontally, the
answer is: take each Pareto-optimal schedule, replicate it until the
target load fits, and keep the cheapest admissible combination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError, ScheduleError
from repro.pipeline.assembly import PipelinePerf
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.objectives import ServiceObjective
from repro.rago.search import SearchConfig, SearchResult, search_schedules


@dataclass(frozen=True)
class ProvisioningResult:
    """Outcome of a provisioning run.

    Attributes:
        budget_xpus: Total chips across all replicas.
        replicas: Pipeline replicas deployed.
        perf: Per-replica performance of the selected schedule.
        total_qps: Aggregate sustained load (replicas x per-replica QPS).
        target_qps: The load the deployment must sustain.
    """

    budget_xpus: int
    replicas: int
    perf: PipelinePerf
    total_qps: float
    target_qps: float


def provision(perf_model: RAGPerfModel, target_qps: float,
              objective: Optional[ServiceObjective] = None,
              config: Optional[SearchConfig] = None,
              result: Optional[SearchResult] = None) -> ProvisioningResult:
    """Find the fewest chips that sustain a target load within SLOs.

    Searches the schedule frontier once, then sizes replica counts: a
    schedule occupying ``c`` charged chips at ``q`` QPS needs
    ``ceil(target / q)`` replicas. The cheapest admissible combination
    wins; ties prefer lower TTFT.

    Args:
        perf_model: Workload + cluster cost model. The cluster bounds
            both the per-replica schedule search and the total fleet.
        target_qps: Requests per second the deployment must sustain.
        objective: Optional latency SLOs each schedule must meet.
        config: Search granularity knobs (ignored when ``result`` is
            given).
        result: Optional precomputed frontier for this perf model --
            lets a memoizing caller (``OptimizerSession.provision``)
            skip the search.

    Raises:
        ConfigError: on a non-positive target.
        ScheduleError: when no admissible replica set fits the cluster.
    """
    if target_qps <= 0:
        raise ConfigError("target_qps must be positive")
    objective = objective or ServiceObjective()
    if result is None:
        result = search_schedules(perf_model, config)
    max_chips = perf_model.cluster.total_xpus

    best: Optional[ProvisioningResult] = None
    for perf in result.frontier:
        if perf.qps <= 0 or not objective.admits(perf):
            continue
        replicas = math.ceil(target_qps / perf.qps)
        chips = replicas * perf.charged_chips
        if chips > max_chips:
            continue
        candidate = ProvisioningResult(
            budget_xpus=chips,
            replicas=replicas,
            perf=perf,
            total_qps=replicas * perf.qps,
            target_qps=target_qps,
        )
        if best is None or (candidate.budget_xpus, candidate.perf.ttft) < \
                (best.budget_xpus, best.perf.ttft):
            best = candidate
    if best is None:
        raise ScheduleError(
            f"cluster of {max_chips} XPUs cannot sustain "
            f"{target_qps:.1f} QPS under {objective}"
        )
    return best
