"""What-if capacity planning: replay one trace against a policy grid.

``repro whatif`` answers the question a provisioning review actually
asks: *for the traffic we recorded yesterday, which combination of
schedule, replica count, routing policy and autoscale controller buys
the highest SLO attainment per chip-second?* A :class:`WhatIfGrid`
names the axes; :func:`run_whatif` replays the shared trace through a
fleet per cell via any :mod:`repro.distrib` backend; the resulting
:class:`WhatIfResult` exposes the Pareto frontier over
(chip-seconds, SLO attainment).

Grids are edited and re-run far more often than they are designed, so
cells are cached content-keyed on disk (:class:`WhatIfCache`): adding
one schedule to a 60-cell grid recomputes one cell, not 61. Error
outcomes are cached too -- an infeasible corner stays infeasible until
the workload or cluster changes, and both are part of the key.

Everything here lazy-imports :mod:`repro.config` (the config package
imports the session module; a module-level import would be circular).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.distrib import (
    SweepJob,
    TaskSpec,
    memory_to_payload,
    resolve_sweep_backend,
)
from repro.pipeline.assembly import Schedule
from repro.rago.pareto import pareto_front
from repro.sim.metrics import SLOTarget

__all__ = [
    "WhatIfGrid",
    "WhatIfCell",
    "WhatIfResult",
    "WhatIfCache",
    "run_whatif",
]

#: Metric columns every resolved cell carries, in report order.
METRIC_NAMES = ("qps", "attainment", "attainment_ttft",
                "attainment_tpot", "p95_ttft", "p95_tpot",
                "replica_seconds", "chip_seconds")


@dataclass(frozen=True)
class WhatIfGrid:
    """The policy axes of one what-if study.

    Cells are the cross product of ``schedules`` x ``routing`` x
    ``autoscale``, where a ``None`` autoscale entry (fixed fleet)
    additionally expands the ``replicas`` axis and an autoscale *spec*
    string (see :func:`~repro.sim.autoscale.parse_autoscale_spec`)
    yields one controller-managed cell whose replica count is the
    controller's business.

    Attributes:
        schedules: Candidate schedules (required, non-empty).
        replicas: Fixed-fleet sizes to try (positive ints).
        routing: Routing policy names (None = engine default).
        autoscale: Autoscale spec strings, None meaning a fixed fleet.
    """

    schedules: Tuple[Schedule, ...]
    replicas: Tuple[int, ...] = (1,)
    routing: Tuple[Optional[str], ...] = (None,)
    autoscale: Tuple[Optional[str], ...] = (None,)

    def __post_init__(self) -> None:
        for name in ("schedules", "replicas", "routing", "autoscale"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if not self.schedules:
            raise ConfigError("whatif grid needs at least one schedule")
        for schedule in self.schedules:
            if not isinstance(schedule, Schedule):
                raise ConfigError(
                    f"whatif schedules must be Schedule instances, "
                    f"got {type(schedule).__name__}")
        if not self.replicas or not self.routing or not self.autoscale:
            raise ConfigError("whatif grid axes must be non-empty")
        for count in self.replicas:
            if not isinstance(count, int) or count < 1:
                raise ConfigError(
                    f"whatif replicas must be positive ints, got {count!r}")

    @property
    def num_cells(self) -> int:
        """How many cells the grid expands to."""
        fixed = sum(1 for spec in self.autoscale if spec is None)
        managed = len(self.autoscale) - fixed
        per_pair = fixed * len(self.replicas) + managed
        return len(self.schedules) * len(self.routing) * per_pair

    def cells(self) -> List[Tuple[Schedule, Optional[int],
                                  Optional[str], Optional[str]]]:
        """Expanded (schedule, replicas, routing, autoscale) cells in
        deterministic grid order."""
        out: List[Tuple[Schedule, Optional[int],
                        Optional[str], Optional[str]]] = []
        for schedule in self.schedules:
            for routing in self.routing:
                for spec in self.autoscale:
                    if spec is None:
                        for count in self.replicas:
                            out.append((schedule, count, routing, None))
                    else:
                        out.append((schedule, None, routing, spec))
        return out


@dataclass(frozen=True)
class WhatIfCell:
    """One resolved grid cell: policy knobs plus replay metrics.

    Exactly one of ``metrics`` / ``error`` is set; ``cached`` records
    whether this cell was served from the on-disk cache (excluded from
    equality so cached and fresh runs compare equal).
    """

    schedule: Schedule
    replicas: Optional[int]
    routing: Optional[str]
    autoscale: Optional[str]
    metrics: Optional[Dict[str, float]] = None
    error: Optional[str] = None
    cached: bool = field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        """Whether the replay produced metrics."""
        return self.metrics is not None

    def metric(self, name: str) -> float:
        """One metric by name; raises for error cells."""
        if self.metrics is None:
            raise ConfigError(
                f"cell has no metrics (error: {self.error})")
        return self.metrics[name]


@dataclass(frozen=True)
class WhatIfResult:
    """Outcome of a what-if study over one trace.

    Attributes:
        cells: Every grid cell, grid order.
        slo_ttft / slo_tpot: The SLO the attainment metrics measure.
        trace_digest: Content hash of the replayed trace, for
            provenance (ties a saved result back to its trace file).
        workers: Backend utilization records (not compared: the same
            study run serially or on a fleet is the same result).
    """

    cells: Tuple[WhatIfCell, ...]
    slo_ttft: Optional[float] = None
    slo_tpot: Optional[float] = None
    trace_digest: str = ""
    workers: Tuple[Dict[str, Any], ...] = field(
        default=(), compare=False, repr=False)

    @property
    def ok_cells(self) -> List[WhatIfCell]:
        """Cells that replayed successfully."""
        return [cell for cell in self.cells if cell.ok]

    @property
    def errors(self) -> List[WhatIfCell]:
        """Cells whose replay failed (infeasible corners)."""
        return [cell for cell in self.cells if not cell.ok]

    @property
    def cache_hits(self) -> int:
        """How many cells were served from the on-disk cache."""
        return sum(1 for cell in self.cells if cell.cached)

    def frontier(self) -> List[WhatIfCell]:
        """Pareto-optimal cells: minimize chip-seconds, maximize SLO
        attainment; ascending cost order."""
        return pareto_front(
            self.ok_cells,
            cost=lambda cell: cell.metrics["chip_seconds"],
            value=lambda cell: cell.metrics["attainment"])

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """One flat record per cell (tidy-table form); ``pareto``
        marks frontier membership."""
        frontier_ids = {id(cell) for cell in self.frontier()}
        rows = []
        for cell in self.cells:
            row: Dict[str, Any] = {
                "schedule": cell.schedule.describe(),
                "replicas": cell.replicas,
                "routing": cell.routing,
                "autoscale": cell.autoscale,
                "error": cell.error,
                "cached": cell.cached,
                "pareto": id(cell) in frontier_ids,
            }
            for name in METRIC_NAMES:
                row[name] = (None if cell.metrics is None
                             else cell.metrics.get(name))
            rows.append(row)
        return rows

    def to_table(self) -> str:
        """The rendered Pareto table (see
        :func:`repro.reporting.format_whatif_table`)."""
        from repro.reporting import format_whatif_table

        return format_whatif_table(self)


class WhatIfCache:
    """Content-keyed on-disk cache of whatif cell outcomes.

    One JSON file per cell under ``root``, named by the cell's content
    key (workload + cluster + trace + SLO + policy knobs), holding the
    raw outcome dict. Corrupt or unreadable entries are misses, never
    errors -- a cache must only ever make a run faster.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached outcome for ``key``, or None on a miss."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) or "result" not in data \
                or "error" not in data:
            return None
        return {"result": data["result"], "error": data["error"]}

    def put(self, key: str, outcome: Dict[str, Any]) -> None:
        """Store one outcome (atomic rename, so a crash mid-write
        leaves a miss, not a corrupt hit)."""
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"result": outcome.get("result"),
                       "error": outcome.get("error")}, handle)
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_whatif(schema, cluster, trace, grid: WhatIfGrid,
               slo: Optional[SLOTarget] = None, *,
               memory=None, backend: Any = None, workers: int = 1,
               cache: Any = None) -> WhatIfResult:
    """Replay ``trace`` through every cell of ``grid``.

    Args:
        schema / cluster: The workload and hardware the fleets serve.
        trace: The recorded :class:`~repro.workloads.traces.RequestTrace`
            every cell replays.
        grid: The policy axes to sweep.
        slo: Attainment targets (default: unconstrained).
        memory: Optional MemoryModel override for the perf model.
        backend / workers: Executor selection, exactly as in
            :meth:`OptimizerSession.sweep
            <repro.rago.session.OptimizerSession.sweep>`.
        cache: A :class:`WhatIfCache`, a directory path (a cache is
            opened there), or None to recompute everything.

    Returns:
        A :class:`WhatIfResult` with one cell per grid cell, grid
        order; cache hits are marked ``cached``.
    """
    from repro import config as config_module

    if slo is None:
        slo = SLOTarget()
    if workers < 1:
        raise ConfigError("whatif needs at least 1 worker")
    if isinstance(cache, (str, os.PathLike)):
        cache = WhatIfCache(cache)
    specs = grid.cells()
    schema_env = config_module.to_config(schema)
    cluster_env = config_module.to_config(cluster)
    trace_env = config_module.to_config(trace)
    memory_payload = memory_to_payload(memory)
    trace_digest = _digest(_canonical(trace_env))
    context = {
        "schema": schema_env,
        "cluster": cluster_env,
        "trace": trace_env,
        "slo": {"ttft": slo.ttft, "tpot": slo.tpot},
        "memory": memory_payload,
    }
    # The cache key folds in everything a cell's metrics depend on:
    # the shared context (with the trace as a digest, not 100k+
    # arrivals re-serialized per cell) plus the cell's own knobs.
    context_key = _canonical({
        "schema": schema_env, "cluster": cluster_env,
        "trace": trace_digest,
        "slo": {"ttft": slo.ttft, "tpot": slo.tpot},
        "memory": memory_payload,
    })
    payloads: List[Dict[str, Any]] = []
    keys: List[str] = []
    for schedule, replicas, routing, autoscale in specs:
        payload = {"schedule": config_module.to_config(schedule),
                   "replicas": replicas, "routing": routing,
                   "autoscale": autoscale}
        payloads.append(payload)
        keys.append(_digest(context_key + "\x1e" + _canonical(payload)))
    outcomes: List[Optional[Dict[str, Any]]] = [None] * len(specs)
    hits = [False] * len(specs)
    jobs: List[SweepJob] = []
    for index, payload in enumerate(payloads):
        hit = cache.get(keys[index]) if cache is not None else None
        if hit is not None:
            outcomes[index] = hit
            hits[index] = True
        else:
            jobs.append(SweepJob(index=index, payload=payload))
    worker_stats: Tuple[Dict[str, Any], ...] = ()
    if jobs:
        task = TaskSpec(kind="whatif", context=context)
        run = resolve_sweep_backend(backend, workers=workers).run(
            task, jobs)
        worker_stats = tuple(run.workers)
        for job, outcome in zip(jobs, run.outcomes):
            outcomes[job.index] = outcome
            if cache is not None:
                cache.put(keys[job.index], outcome)
    cells = tuple(
        WhatIfCell(schedule=schedule, replicas=replicas,
                   routing=routing, autoscale=autoscale,
                   metrics=outcome["result"], error=outcome["error"],
                   cached=cached)
        for (schedule, replicas, routing, autoscale), outcome, cached
        in zip(specs, outcomes, hits))
    return WhatIfResult(cells=cells, slo_ttft=slo.ttft,
                        slo_tpot=slo.tpot, trace_digest=trace_digest,
                        workers=worker_stats)
