"""Heterogeneous accelerator selection (resource-*type* allocation).

RAGO's resource allocation assigns "the type and quantity of resources
to each component" (§1). The main search fixes one XPU generation for
the whole pipeline; this extension explores *split-generation* plans:
the pre-prefix stages (compute-bound prefill work) on one generation and
decode (memory-bandwidth-bound) on another. Because different chips cost
differently, plans are compared by QPS per dollar rather than QPS per
chip.

The motivating insight is the paper's own Fig. 7a: faster accelerators
mostly shift the bottleneck, so spending premium chips where the
workload is compute-bound and cheaper high-bandwidth-per-dollar chips on
decode can beat a homogeneous fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, ScheduleError
from repro.hardware.accelerator import XPU_A, XPU_B, XPU_C, XPUSpec
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import (
    SearchConfig,
    _Profiler,
    _prune,
    _serial_merge,
)
from repro.rago.allocation import enumerate_allocations
from repro.rago.placement import enumerate_placements
from repro.schema.ragschema import RAGSchema
from repro.schema.stages import Stage

#: Default hourly prices per generation (scaled with capability).
DEFAULT_XPU_PRICES: Dict[str, float] = {
    "XPU-A": 1.40,
    "XPU-B": 2.20,
    "XPU-C": 4.20,
}
#: Retrieval-host hourly price.
DEFAULT_SERVER_PRICE = 5.00

GENERATIONS: Tuple[XPUSpec, ...] = (XPU_A, XPU_B, XPU_C)


@dataclass(frozen=True)
class HeteroPoint:
    """One split-generation operating point.

    Attributes:
        prefill_xpu / decode_xpu: Generation names per tier.
        ttft: Time-to-first-token in seconds.
        qps: Requests per second.
        dollars_per_hour: Fleet price.
        qps_per_dollar: Throughput per hourly dollar.
        prefill_chips / decode_chips: Chips per tier.
        servers: Retrieval hosts.
    """

    prefill_xpu: str
    decode_xpu: str
    ttft: float
    qps: float
    dollars_per_hour: float
    qps_per_dollar: float
    prefill_chips: int
    decode_chips: int
    servers: int


@dataclass
class HeteroResult:
    """Frontier of split-generation plans.

    Attributes:
        frontier: Pareto points over (ttft, qps_per_dollar).
        best_homogeneous: The best single-generation point.
        best: The overall best-throughput-per-dollar point.
    """

    frontier: List[HeteroPoint]
    best_homogeneous: HeteroPoint
    best: HeteroPoint

    @property
    def hetero_gain(self) -> float:
        """QPS-per-dollar gain of the best plan over homogeneous."""
        return self.best.qps_per_dollar / self.best_homogeneous.qps_per_dollar


def _cluster_with(base: ClusterSpec, xpu: XPUSpec) -> ClusterSpec:
    return ClusterSpec(num_servers=base.num_servers,
                       xpus_per_server=base.xpus_per_server, xpu=xpu,
                       cpu=base.cpu, pcie_bandwidth=base.pcie_bandwidth)


def split_generation_search(schema: RAGSchema, cluster: ClusterSpec,
                            prices: Optional[Dict[str, float]] = None,
                            server_price: float = DEFAULT_SERVER_PRICE,
                            config: Optional[SearchConfig] = None) -> HeteroResult:
    """Search split-generation plans for a schema.

    For every (prefill generation, decode generation) pair, composes the
    pre-prefix stage options on the prefill generation with decode
    options on the decode generation, prices the result, and returns the
    (TTFT, QPS/$) frontier.

    Raises:
        ScheduleError: when no feasible plan exists.
        ConfigError: on unpriced generations.
    """
    prices = dict(DEFAULT_XPU_PRICES if prices is None else prices)
    config = config or SearchConfig(max_batch=64, max_decode_batch=512)
    for xpu in GENERATIONS:
        if xpu.name not in prices:
            raise ConfigError(f"no price for generation {xpu.name}")
    if server_price <= 0:
        raise ConfigError("server_price must be positive")

    perf_models = {xpu.name: RAGPerfModel(schema, _cluster_with(cluster, xpu))
                   for xpu in GENERATIONS}
    profilers = {name: _Profiler(model, config)
                 for name, model in perf_models.items()}
    budget = cluster.total_xpus
    placements = enumerate_placements(schema)
    retrieval_floor = (perf_models[XPU_C.name].retrieval.min_servers()
                       if schema.has_retrieval else 0)

    points: List[Tuple[float, float, HeteroPoint]] = []
    for prefill_xpu in GENERATIONS:
        prefill_profiler = profilers[prefill_xpu.name]
        prefill_model = perf_models[prefill_xpu.name]
        for decode_xpu in GENERATIONS:
            decode_profiler = profilers[decode_xpu.name]
            decode_model = perf_models[decode_xpu.name]
            for placement in placements:
                pre_groups = placement[:-1]
                try:
                    minimums = [max(prefill_model.min_resource(stage)
                                    for stage in group)
                                for group in pre_groups]
                    minimums.append(
                        decode_model.min_resource(Stage.DECODE))
                except Exception:  # infeasible model/chip combination
                    continue
                try:
                    allocations = list(enumerate_allocations(minimums,
                                                             budget))
                except ConfigError:
                    continue
                for allocation in allocations:
                    total = sum(allocation)
                    servers = max(retrieval_floor,
                                  cluster.servers_for_xpus(total))
                    if servers > cluster.num_servers:
                        continue
                    options = None
                    feasible = True
                    for group, chips in zip(pre_groups, allocation[:-1]):
                        group_opts = prefill_profiler.group_options(group,
                                                                    chips)
                        if not group_opts:
                            feasible = False
                            break
                        options = group_opts if options is None else \
                            _serial_merge(options, group_opts)
                    if not feasible:
                        continue
                    decode_opts = decode_profiler.stage_options(
                        Stage.DECODE, allocation[-1])
                    if not decode_opts:
                        continue
                    options = decode_opts if options is None else \
                        _serial_merge(options, decode_opts)
                    if schema.has_retrieval:
                        retr_opts = prefill_profiler.stage_options(
                            Stage.RETRIEVAL, servers)
                        if not retr_opts:
                            continue
                        options = _serial_merge(options, retr_opts)
                    prefill_chips = sum(allocation[:-1])
                    decode_chips = allocation[-1]
                    dollars = (prefill_chips * prices[prefill_xpu.name]
                               + decode_chips * prices[decode_xpu.name]
                               + servers * server_price)
                    for ttft, qps, _ in _prune(options):
                        point = HeteroPoint(
                            prefill_xpu=prefill_xpu.name,
                            decode_xpu=decode_xpu.name,
                            ttft=ttft,
                            qps=qps,
                            dollars_per_hour=dollars,
                            qps_per_dollar=qps / dollars,
                            prefill_chips=prefill_chips,
                            decode_chips=decode_chips,
                            servers=servers,
                        )
                        points.append((ttft, qps / dollars, point))

    if not points:
        raise ScheduleError(f"no feasible hetero plan for {schema.name}")

    # Pareto over (ttft, qps_per_dollar).
    points.sort(key=lambda entry: (entry[0], -entry[1]))
    frontier: List[HeteroPoint] = []
    best_value = -1.0
    for ttft, value, point in points:
        if value > best_value:
            frontier.append(point)
            best_value = value

    best = max(frontier, key=lambda p: p.qps_per_dollar)
    homogeneous = [entry[2] for entry in points
                   if entry[2].prefill_xpu == entry[2].decode_xpu]
    best_homogeneous = max(homogeneous,
                           key=lambda p: p.qps_per_dollar)
    return HeteroResult(frontier=frontier,
                        best_homogeneous=best_homogeneous, best=best)
