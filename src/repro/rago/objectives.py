"""Performance-objective selection over a search result.

RAGO "determines optimal schedules aligned with user-defined performance
objectives" (§1). This module turns a Pareto frontier into a decision:
meet latency SLOs (TTFT and/or TPOT ceilings) and maximize cost
efficiency within them, or trade the two off explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError, ScheduleError
from repro.pipeline.assembly import PipelinePerf
from repro.rago.search import SearchResult


@dataclass(frozen=True)
class ServiceObjective:
    """A serving-level objective.

    Attributes:
        max_ttft: TTFT ceiling in seconds (None = unconstrained).
        max_tpot: TPOT ceiling in seconds (None = unconstrained).
        min_qps_per_chip: Throughput floor (None = unconstrained).
    """

    max_ttft: Optional[float] = None
    max_tpot: Optional[float] = None
    min_qps_per_chip: Optional[float] = None

    def __post_init__(self) -> None:
        for name, value in (("max_ttft", self.max_ttft),
                            ("max_tpot", self.max_tpot),
                            ("min_qps_per_chip", self.min_qps_per_chip)):
            if value is not None and value <= 0:
                raise ConfigError(f"{name} must be positive when set")

    def admits(self, perf: PipelinePerf) -> bool:
        """Whether a schedule's performance satisfies every constraint."""
        if self.max_ttft is not None and perf.ttft > self.max_ttft:
            return False
        if self.max_tpot is not None and perf.tpot > self.max_tpot:
            return False
        if self.min_qps_per_chip is not None \
                and perf.qps_per_chip < self.min_qps_per_chip:
            return False
        return True


def admissible(result: SearchResult,
               objective: ServiceObjective) -> List[PipelinePerf]:
    """Frontier points satisfying an objective, sorted by TTFT."""
    return [perf for perf in result.frontier if objective.admits(perf)]


def select_max_throughput(result: SearchResult,
                          objective: ServiceObjective) -> PipelinePerf:
    """Highest QPS/chip schedule meeting the objective.

    Raises:
        ScheduleError: when no frontier point satisfies the objective.
    """
    candidates = admissible(result, objective)
    if not candidates:
        raise ScheduleError(
            f"no schedule satisfies {objective} on this frontier"
        )
    return max(candidates, key=lambda perf: perf.qps_per_chip)


def select_min_ttft(result: SearchResult,
                    objective: ServiceObjective) -> PipelinePerf:
    """Lowest-TTFT schedule meeting the objective.

    Raises:
        ScheduleError: when no frontier point satisfies the objective.
    """
    candidates = admissible(result, objective)
    if not candidates:
        raise ScheduleError(
            f"no schedule satisfies {objective} on this frontier"
        )
    return min(candidates, key=lambda perf: perf.ttft)


def knee_point(result: SearchResult) -> PipelinePerf:
    """The frontier's knee: best normalized QPS-gain per TTFT-cost.

    Normalizes both axes to [0, 1] across the frontier and returns the
    point maximizing ``qps_norm - ttft_norm`` -- a balanced default when
    the user states no explicit SLO.

    Raises:
        ScheduleError: on an empty frontier.
    """
    frontier = result.frontier
    if not frontier:
        raise ScheduleError("empty frontier")
    if len(frontier) == 1:
        return frontier[0]
    ttft_lo = min(perf.ttft for perf in frontier)
    ttft_hi = max(perf.ttft for perf in frontier)
    qps_lo = min(perf.qps_per_chip for perf in frontier)
    qps_hi = max(perf.qps_per_chip for perf in frontier)
    ttft_span = max(ttft_hi - ttft_lo, 1e-12)
    qps_span = max(qps_hi - qps_lo, 1e-12)

    def score(perf: PipelinePerf) -> float:
        qps_norm = (perf.qps_per_chip - qps_lo) / qps_span
        ttft_norm = (perf.ttft - ttft_lo) / ttft_span
        return qps_norm - ttft_norm

    return max(frontier, key=score)
