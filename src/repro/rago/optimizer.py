"""RAGO facade: optimize a RAGSchema on a cluster.

Ties together the stage cost models and the schedule search (Fig. 2 of
the paper: RAGSchema + resources in, performance Pareto + optimal system
configuration out). Since the session redesign this class is a thin
backward-compatible veneer over
:class:`~repro.rago.session.OptimizerSession`, which adds chainable
constraints, memoized searches and grid sweeps.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.cluster import ClusterSpec
from repro.inference.memory import MemoryModel
from repro.pipeline.assembly import PipelinePerf, Schedule
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import SearchConfig, SearchResult
from repro.rago.session import OptimizerSession
from repro.schema.ragschema import RAGSchema


class RAGO:
    """Retrieval-Augmented Generation Optimizer.

    Example:
        >>> from repro.hardware import ClusterSpec
        >>> from repro.schema import case_iv_rewriter_reranker
        >>> rago = RAGO(case_iv_rewriter_reranker("70B"), ClusterSpec())
        >>> result = rago.optimize()
        >>> best = result.max_qps_per_chip
    """

    def __init__(self, schema: RAGSchema, cluster: Optional[ClusterSpec] = None,
                 memory: Optional[MemoryModel] = None) -> None:
        self._session = OptimizerSession(schema, cluster, memory=memory)

    @property
    def session(self) -> OptimizerSession:
        """The underlying (memoizing) optimizer session."""
        return self._session

    @property
    def schema(self) -> RAGSchema:
        """The workload being optimized."""
        return self._session.schema

    @property
    def cluster(self) -> ClusterSpec:
        """The hardware budget."""
        return self._session.cluster

    @property
    def perf_model(self) -> RAGPerfModel:
        """Stage-level cost model (shared caches)."""
        return self._session.perf_model

    def optimize(self, config: Optional[SearchConfig] = None) -> SearchResult:
        """Search the scheduling space and return the Pareto frontier."""
        return self._session.optimize(config)

    def evaluate(self, schedule: Schedule) -> PipelinePerf:
        """Evaluate one explicit schedule (no search)."""
        return self._session.evaluate(schedule)

    def max_qps_per_chip(self,
                         config: Optional[SearchConfig] = None) -> PipelinePerf:
        """The throughput-optimal schedule's performance."""
        return self.optimize(config).max_qps_per_chip

    def min_ttft(self, config: Optional[SearchConfig] = None) -> PipelinePerf:
        """The latency-optimal schedule's performance."""
        return self.optimize(config).min_ttft
