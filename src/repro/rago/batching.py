"""Batching-policy options (§6.1 [III]).

Each stage may run its own batch size; RAGO sweeps powers of two (the
paper's default search granularity). Decode uses continuous batching and
therefore tolerates much larger batches than the latency-sensitive
pre-prefix stages.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.schema.stages import Stage


def batch_options(stage: Stage, max_batch: int = 128,
                  max_decode_batch: int = 1024) -> List[int]:
    """Power-of-two batch sizes RAGO considers for a stage.

    Args:
        stage: Pipeline stage.
        max_batch: Cap for pre-decode stages.
        max_decode_batch: Cap for the decode stage (continuous batching).

    Raises:
        ConfigError: on non-positive caps.
    """
    if max_batch <= 0 or max_decode_batch <= 0:
        raise ConfigError("batch caps must be positive")
    cap = max_decode_batch if stage is Stage.DECODE else max_batch
    options: List[int] = []
    value = 1
    while value <= cap:
        options.append(value)
        value *= 2
    return options
