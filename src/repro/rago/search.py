"""Exhaustive schedule search with Pareto pruning (Algorithm 1).

The paper's Algorithm 1 proceeds in three steps: (1) profile each stage
across resource allocations and batch sizes, (2) generate schedules as
the Cartesian product of placement x allocation x batching options, and
(3) assemble end-to-end performance and keep the Pareto frontier.

A naive Cartesian product is astronomically large, but the objective
space is separable: TTFT is a *sum* of stage latencies and QPS is a *min*
over stage groups (harmonic within a collocated group), so partial
schedules can be merged pairwise and pruned to their Pareto subset after
every merge without losing any optimal point. That is exactly what this
module does; the final frontier candidates are re-evaluated through
:func:`repro.pipeline.assembly.assemble` so the reported numbers come
from the single authoritative composition path (including iterative-
retrieval adjustments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CapacityError, ConfigError, ScheduleError
from repro.pipeline.assembly import PipelinePerf, PlacementGroup, Schedule, assemble
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.batching import batch_options
from repro.rago.pareto import pareto_front
from repro.rago.placement import Placement, enumerate_placements
from repro.rago.allocation import enumerate_allocations
from repro.schema.stages import Stage, spans_retrieval, ttft_stages

#: Partial-schedule option:
#: (ttft seconds, qps, ((stage, batch, sharding plan or None), ...)).
_Option = Tuple[float, float, Tuple[Tuple[Stage, int, object], ...]]


@dataclass(frozen=True)
class SearchConfig:
    """Knobs bounding RAGO's search space (the paper's "granularity").

    Attributes:
        budget_xpus: Total accelerator budget; None uses the cluster's.
        max_batch: Largest pre-decode batch size considered.
        max_decode_batch: Largest decode batch size considered.
        placements: Restrict the placement plans searched (None = all
            legal plans); used for the placement-sensitivity study.
        allocations: Restrict the chip allocations searched (None = all
            power-of-two splits within the budget); tuples must match a
            placement's group count and are skipped otherwise. Used by
            the LLM-extension baseline's fixed 1:1 prefix:decode split.
        collect_per_plan: Also return a per-(placement, allocation)
            Pareto frontier for the composition analyses (Figs. 16, 18).
        max_frontier_points: Safety cap on retained candidates between
            pruning passes.
    """

    budget_xpus: Optional[int] = None
    max_batch: int = 128
    max_decode_batch: int = 1024
    placements: Optional[Sequence[Placement]] = None
    allocations: Optional[Sequence[Tuple[int, ...]]] = None
    collect_per_plan: bool = False
    max_frontier_points: int = 4096

    def __post_init__(self) -> None:
        # Normalize the restriction containers to nested tuples so that
        # equal restrictions compare equal (and serialization round-trips
        # exactly) no matter which sequence type the caller used.
        if self.placements is not None:
            object.__setattr__(self, "placements", tuple(
                tuple(tuple(group) for group in placement)
                for placement in self.placements))
        if self.allocations is not None:
            object.__setattr__(self, "allocations", tuple(
                tuple(allocation) for allocation in self.allocations))


@dataclass(frozen=True)
class PlanFrontier:
    """Pareto frontier of one placement + allocation plan."""

    placement: Placement
    allocation: Tuple[int, ...]
    points: Tuple[Tuple[float, float], ...]  # (ttft, qps_per_chip)


@dataclass
class SearchResult:
    """Outcome of a schedule search.

    Attributes:
        frontier: Pareto-optimal end-to-end performances (each carries
            its schedule), sorted by ascending TTFT.
        num_plans: Placement x allocation plans evaluated.
        num_candidates: Batching-policy points surviving plan-level
            pruning.
        per_plan: Optional per-plan frontiers (when collected).
    """

    frontier: List[PipelinePerf]
    num_plans: int = 0
    num_candidates: int = 0
    per_plan: List[PlanFrontier] = field(default_factory=list)

    @property
    def max_qps_per_chip(self) -> PipelinePerf:
        """Frontier point with the highest QPS/chip."""
        if not self.frontier:
            raise ScheduleError("empty frontier")
        return max(self.frontier, key=lambda perf: perf.qps_per_chip)

    @property
    def min_ttft(self) -> PipelinePerf:
        """Frontier point with the lowest TTFT."""
        if not self.frontier:
            raise ScheduleError("empty frontier")
        return min(self.frontier, key=lambda perf: perf.ttft)


def _prune(options: List[_Option]) -> List[_Option]:
    """Pareto subset: minimize ttft, maximize qps."""
    if not options:
        return []
    options.sort(key=lambda opt: (opt[0], -opt[1]))
    pruned: List[_Option] = []
    best_qps = -math.inf
    for option in options:
        if option[1] > best_qps:
            pruned.append(option)
            best_qps = option[1]
    return pruned


class _Profiler:
    """Caches per-stage and per-group option sets (Algorithm 1, step 1)."""

    def __init__(self, perf_model: RAGPerfModel, config: SearchConfig) -> None:
        self._perf_model = perf_model
        self._config = config
        self._schema = perf_model.schema
        self._ttft_set = set(ttft_stages(self._schema))
        freq = self._schema.retrieval_frequency
        self._visits: Dict[Stage, float] = {}
        if self._schema.is_iterative:
            self._visits[Stage.RETRIEVAL] = float(freq)
            self._visits[Stage.PREFIX] = float(freq)
        self._stage_cache: Dict[Tuple[Stage, int], List[_Option]] = {}
        self._group_cache: Dict[Tuple[Tuple[Stage, ...], int],
                                List[_Option]] = {}

    def stage_options(self, stage: Stage, resource: int) -> List[_Option]:
        """Pareto (ttft, qps) points over batch sizes and sharding plans
        for one stage."""
        key = (stage, resource)
        if key in self._stage_cache:
            return self._stage_cache[key]
        options: List[_Option] = []
        visits = self._visits.get(stage, 1.0)
        for batch in batch_options(stage, self._config.max_batch,
                                   self._config.max_decode_batch):
            try:
                perfs = self._perf_model.perf_options(stage, batch, resource)
            except CapacityError:
                continue
            for perf in perfs:
                ttft = perf.latency if stage in self._ttft_set else 0.0
                qps = perf.request_qps / visits
                options.append((ttft, qps,
                                ((stage, batch, perf.plan),)))
        pruned = _prune(options)
        self._stage_cache[key] = pruned
        return pruned

    def group_options(self, stages: Tuple[Stage, ...],
                      num_xpus: int) -> List[_Option]:
        """Pareto points for a collocated group (harmonic throughput)."""
        key = (stages, num_xpus)
        if key in self._group_cache:
            return self._group_cache[key]
        # Accumulate (ttft_sum, inverse_qps_sum, batches) across stages.
        partial: List[Tuple[float, float, Tuple[Tuple[Stage, int], ...]]]
        partial = [(0.0, 0.0, ())]
        for stage in stages:
            stage_opts = self.stage_options(stage, num_xpus)
            if not stage_opts:
                partial = []
                break
            merged = []
            for acc_ttft, acc_inv, acc_batches in partial:
                for ttft, qps, batches in stage_opts:
                    merged.append((acc_ttft + ttft, acc_inv + 1.0 / qps,
                                   acc_batches + batches))
            # Prune on (ttft, inverse-qps): both minimized.
            merged.sort(key=lambda opt: (opt[0], opt[1]))
            pruned = []
            best_inv = math.inf
            for option in merged:
                if option[1] < best_inv:
                    pruned.append(option)
                    best_inv = option[1]
            partial = pruned
        options = [(ttft, 1.0 / inv, batches)
                   for ttft, inv, batches in partial if inv > 0]
        pruned = _prune(options)
        self._group_cache[key] = pruned
        return pruned


def _serial_merge(left: List[_Option], right: List[_Option]) -> List[_Option]:
    """Compose two disaggregated segments: TTFT adds, QPS takes the min."""
    merged = [(a_ttft + b_ttft, min(a_qps, b_qps), a_b + b_b)
              for a_ttft, a_qps, a_b in left
              for b_ttft, b_qps, b_b in right]
    return _prune(merged)


def _harmonic_merge(left: List[_Option],
                    right: List[_Option]) -> List[_Option]:
    """Compose two time-multiplexed segments: TTFT adds, QPS composes
    harmonically (the §6.1 retrieval-stall rule for collocated groups
    that straddle the retrieval stage)."""
    merged = [(a_ttft + b_ttft,
               1.0 / (1.0 / a_qps + 1.0 / b_qps),
               a_b + b_b)
              for a_ttft, a_qps, a_b in left
              for b_ttft, b_qps, b_b in right]
    return _prune(merged)


def search_schedules(perf_model: RAGPerfModel,
                     config: Optional[SearchConfig] = None) -> SearchResult:
    """Run Algorithm 1 and return the TTFT vs. QPS/chip frontier.

    Raises:
        ScheduleError: when no feasible schedule exists in the budget.
        ConfigError: on inconsistent configuration.
    """
    config = config or SearchConfig()
    schema = perf_model.schema
    cluster = perf_model.cluster
    budget = config.budget_xpus or cluster.total_xpus
    if budget <= 0:
        raise ConfigError("budget_xpus must be positive")
    if budget > cluster.total_xpus:
        raise ConfigError(
            f"budget {budget} exceeds the cluster's {cluster.total_xpus} XPUs"
        )
    placements = list(config.placements
                      if config.placements is not None
                      else enumerate_placements(schema))
    profiler = _Profiler(perf_model, config)

    candidates: List[Tuple[float, float, Schedule]] = []
    per_plan: List[PlanFrontier] = []
    num_plans = 0
    num_candidates = 0

    retrieval_floor = (perf_model.retrieval.min_servers()
                       if schema.has_retrieval else 0)

    for placement in placements:
        group_minimums = []
        feasible = True
        for group in placement:
            try:
                minimum = max(perf_model.min_resource(stage)
                              for stage in group)
            except CapacityError:
                feasible = False
                break
            group_minimums.append(minimum)
        if not feasible:
            continue
        if config.allocations is not None:
            allocations = [
                allocation for allocation in config.allocations
                if len(allocation) == len(placement)
                and sum(allocation) <= budget
                and all(chips >= minimum for chips, minimum
                        in zip(allocation, group_minimums))
            ]
        else:
            try:
                allocations = list(enumerate_allocations(group_minimums,
                                                         budget))
            except ConfigError:
                continue
        for allocation in allocations:
            num_plans += 1
            total_xpus = sum(allocation)
            servers = 0
            if schema.has_retrieval:
                servers = max(retrieval_floor,
                              cluster.servers_for_xpus(total_xpus))
                if servers > cluster.num_servers:
                    continue
            retrieval_opts: List[_Option] = []
            if schema.has_retrieval:
                retrieval_opts = profiler.stage_options(Stage.RETRIEVAL,
                                                        servers)
                if not retrieval_opts:
                    continue
            spanning_index = next(
                (index for index, group in enumerate(placement)
                 if len(group) > 1 and spans_retrieval(group, schema)),
                None)
            options: Optional[List[_Option]] = None
            for index, (group, chips) in enumerate(zip(placement,
                                                       allocation)):
                group_opts = profiler.group_options(group, chips)
                if group_opts and index == spanning_index:
                    # §6.1: chips idle during retrieval between the
                    # group's stages -- retrieval joins its cycle.
                    group_opts = _harmonic_merge(group_opts,
                                                 retrieval_opts)
                if not group_opts:
                    options = []
                    break
                options = group_opts if options is None \
                    else _serial_merge(options, group_opts)
            if not options:
                continue
            if schema.has_retrieval and spanning_index is None:
                options = _serial_merge(options, retrieval_opts)
            charged_chips = max(total_xpus,
                                servers * cluster.xpus_per_server)
            plan_points: List[Tuple[float, float]] = []
            for ttft, qps, choices in options:
                num_candidates += 1
                batch_map = {stage: batch for stage, batch, _ in choices}
                shard_plans = {stage: plan for stage, _, plan in choices
                               if plan is not None}
                schedule = Schedule(
                    groups=tuple(
                        PlacementGroup(stages=group, num_xpus=chips)
                        for group, chips in zip(placement, allocation)),
                    batches=batch_map,
                    retrieval_servers=servers if schema.has_retrieval
                    else None,
                    shard_plans=shard_plans,
                )
                qps_per_chip = qps / charged_chips
                candidates.append((ttft, qps_per_chip, schedule))
                plan_points.append((ttft, qps_per_chip))
            if config.collect_per_plan and plan_points:
                front = pareto_front(plan_points,
                                     cost=lambda p: p[0],
                                     value=lambda p: p[1])
                per_plan.append(PlanFrontier(placement=placement,
                                             allocation=allocation,
                                             points=tuple(front)))
            if len(candidates) > config.max_frontier_points:
                candidates = pareto_front(candidates,
                                          cost=lambda c: c[0],
                                          value=lambda c: c[1])

    if not candidates:
        raise ScheduleError(
            f"no feasible schedule for {schema.name} within {budget} XPUs"
        )
    front = pareto_front(candidates, cost=lambda c: c[0],
                         value=lambda c: c[1])

    # Re-assemble the surviving schedules through the authoritative
    # composition path (adds TPOT and iterative-retrieval effects). For
    # iterative schemas (Case III), the decoder-initiated retrieval
    # batch size is its own policy knob (§5.3/§6.1 [III]): sweep it per
    # surviving schedule and let the Pareto pass keep the best.
    performances: List[PipelinePerf] = []
    iterative_options: List[Optional[int]] = [None]
    if schema.is_iterative:
        iterative_options = list(batch_options(
            Stage.RETRIEVAL, config.max_batch, config.max_decode_batch))
    for _, _, schedule in front:
        for iterative_batch in iterative_options:
            candidate = schedule if iterative_batch is None else Schedule(
                groups=schedule.groups,
                batches=schedule.batches,
                retrieval_servers=schedule.retrieval_servers,
                iterative_batch=iterative_batch,
                shard_plans=schedule.shard_plans,
            )
            performances.append(assemble(perf_model, candidate))
    performances = pareto_front(performances,
                                cost=lambda perf: perf.ttft,
                                value=lambda perf: perf.qps_per_chip)
    performances.sort(key=lambda perf: perf.ttft)
    return SearchResult(frontier=performances, num_plans=num_plans,
                        num_candidates=num_candidates, per_plan=per_plan)
