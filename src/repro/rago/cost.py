"""Cost-efficiency extension: dollars per million requests.

The paper's conclusion names "additional efficiency metrics, such as
energy and cost efficiency" as future work (§9). This module prices a
schedule: XPU-hours and CPU-server-hours per request at the schedule's
steady-state throughput, under a configurable price book. It composes
with the schedule search -- sweep the frontier and pick the cheapest
point meeting an SLO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.pipeline.assembly import PipelinePerf
from repro.rago.search import SearchResult

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class PriceBook:
    """Hourly resource prices in dollars.

    Defaults approximate public-cloud list prices for a TPU-v5p-class
    accelerator and a large memory-optimized host.

    Attributes:
        xpu_hour: Price of one accelerator-hour.
        server_hour: Price of one retrieval-host-hour (CPU + DRAM).
    """

    xpu_hour: float = 4.20
    server_hour: float = 5.00

    def __post_init__(self) -> None:
        if self.xpu_hour <= 0 or self.server_hour <= 0:
            raise ConfigError("prices must be positive")


@dataclass(frozen=True)
class CostEstimate:
    """Priced performance of one schedule.

    Attributes:
        dollars_per_hour: Fleet cost of the deployment.
        dollars_per_million_requests: Cost efficiency at steady state.
        perf: The underlying performance point.
    """

    dollars_per_hour: float
    dollars_per_million_requests: float
    perf: PipelinePerf


def estimate_cost(perf: PipelinePerf,
                  prices: PriceBook = PriceBook()) -> CostEstimate:
    """Price one schedule at its steady-state throughput.

    XPUs are charged at the schedule's charged-chip count (database
    hosts are paid for even when their XPU slots idle); retrieval
    servers are charged on top only beyond the hosts already implied by
    the chips.

    Raises:
        ConfigError: if the schedule has zero throughput.
    """
    if perf.qps <= 0:
        raise ConfigError("cannot price a zero-throughput schedule")
    xpu_cost = perf.charged_chips * prices.xpu_hour
    implied_hosts = perf.charged_chips / 4.0
    extra_servers = max(perf.retrieval_servers - implied_hosts, 0.0)
    server_cost = (implied_hosts + extra_servers) * prices.server_hour
    hourly = xpu_cost + server_cost
    per_million = hourly / (perf.qps * _SECONDS_PER_HOUR) * 1e6
    return CostEstimate(dollars_per_hour=hourly,
                        dollars_per_million_requests=per_million,
                        perf=perf)


def cheapest_point(result: SearchResult,
                   prices: PriceBook = PriceBook()) -> CostEstimate:
    """The frontier point with the lowest cost per million requests."""
    estimates = [estimate_cost(perf, prices) for perf in result.frontier
                 if perf.qps > 0]
    if not estimates:
        raise ConfigError("no positive-throughput frontier point")
    return min(estimates,
               key=lambda est: est.dollars_per_million_requests)
