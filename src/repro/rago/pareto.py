"""Pareto-frontier utilities.

RAGO's objective space is (TTFT, QPS/chip): minimize the first, maximize
the second. A point is dominated when another point is at least as good
on both axes and strictly better on one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ParetoPoint:
    """A generic (cost, value) objective point with an attached payload.

    Attributes:
        cost: Objective to minimize (e.g. TTFT seconds).
        value: Objective to maximize (e.g. QPS/chip).
        payload: Arbitrary attachment (e.g. the schedule).
    """

    cost: float
    value: float
    payload: object = None


def pareto_front(items: Sequence[T], cost: Callable[[T], float],
                 value: Callable[[T], float]) -> List[T]:
    """Non-dominated subset of ``items``, sorted by ascending cost.

    Minimizes ``cost`` and maximizes ``value``. Duplicate-cost points keep
    only the best value; a point equal on both axes to a kept point is
    dropped (any one representative suffices).
    """
    if not items:
        return []
    ordered = sorted(items, key=lambda item: (cost(item), -value(item)))
    front: List[T] = []
    best_value = float("-inf")
    last_cost = None
    for item in ordered:
        item_cost = cost(item)
        item_value = value(item)
        if item_value <= best_value:
            continue
        if last_cost is not None and item_cost == last_cost:
            # Same cost, higher value than kept? impossible given sort.
            continue
        front.append(item)
        best_value = item_value
        last_cost = item_cost
    return front


def dominates(cost_a: float, value_a: float, cost_b: float,
              value_b: float) -> bool:
    """Whether point A dominates point B (min cost, max value)."""
    at_least_as_good = cost_a <= cost_b and value_a >= value_b
    strictly_better = cost_a < cost_b or value_a > value_b
    return at_least_as_good and strictly_better
