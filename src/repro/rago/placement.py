"""Task-placement enumeration (§6.1 [I], Fig. 13).

RAGO considers hybrid collocation-disaggregation plans under three rules:

1. The main LLM's prefix and decode phases stay disaggregated.
2. Retrieval always runs disaggregated on CPU servers.
3. Only *consecutive neighbour* stages up to (and including) prefix may
   be collocated -- collocation groups are contiguous runs of the
   pre-prefix stage chain.

For a chain of n pre-prefix XPU stages there are 2^(n-1) contiguous
partitions; each partition plus the mandatory decode group is one
placement plan.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.schema.ragschema import RAGSchema
from repro.schema.stages import Stage, pre_prefix_xpu_stages

#: A placement: ordered groups of XPU stages (decode group included last).
Placement = Tuple[Tuple[Stage, ...], ...]


def contiguous_partitions(items: Tuple[Stage, ...]) -> List[Tuple[Tuple[Stage, ...], ...]]:
    """All partitions of a sequence into contiguous non-empty groups."""
    if not items:
        return [()]
    partitions: List[Tuple[Tuple[Stage, ...], ...]] = []
    n = len(items)
    # Each of the n-1 gaps is either a split point or not.
    for mask in range(1 << (n - 1)):
        groups: List[Tuple[Stage, ...]] = []
        start = 0
        for gap in range(n - 1):
            if mask & (1 << gap):
                groups.append(tuple(items[start:gap + 1]))
                start = gap + 1
        groups.append(tuple(items[start:]))
        partitions.append(tuple(groups))
    return partitions


def enumerate_placements(schema: RAGSchema) -> List[Placement]:
    """All legal placement plans for a schema.

    Returns:
        Placements, each a tuple of stage groups; the final group is
        always ``(Stage.DECODE,)``.
    """
    chain = tuple(pre_prefix_xpu_stages(schema))
    placements: List[Placement] = []
    for partition in contiguous_partitions(chain):
        placements.append(partition + ((Stage.DECODE,),))
    return placements


def fully_disaggregated(schema: RAGSchema) -> Placement:
    """The placement where every stage owns its chips."""
    chain = pre_prefix_xpu_stages(schema)
    return tuple((stage,) for stage in chain) + ((Stage.DECODE,),)


def fully_collocated(schema: RAGSchema) -> Placement:
    """The placement collocating the whole pre-prefix chain (baseline
    style); decode remains separate."""
    chain = tuple(pre_prefix_xpu_stages(schema))
    return (chain, (Stage.DECODE,))
