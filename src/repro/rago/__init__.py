"""RAGO: the scheduling-policy optimizer (Algorithm 1).

Given a :class:`~repro.schema.RAGSchema` and a hardware budget, RAGO
searches over three scheduling decisions:

* **Task placement** (:mod:`repro.rago.placement`) -- which neighbouring
  pre-prefix stages share chips (collocation) versus owning their own
  (disaggregation); prefix/decode stay disaggregated, retrieval stays on
  CPUs.
* **Resource allocation** (:mod:`repro.rago.allocation`) -- powers-of-two
  XPU counts per stage group within the budget.
* **Batching policy** (:mod:`repro.rago.batching`) -- per-stage batch
  sizes.

The search (:mod:`repro.rago.search`) composes cached per-stage profiles
with Pareto pruning and returns the TTFT vs. QPS/chip frontier with the
schedules that achieve it; :class:`~repro.rago.optimizer.RAGO` is the
user-facing facade.
"""

from repro.rago.pareto import ParetoPoint, pareto_front
from repro.rago.placement import enumerate_placements
from repro.rago.allocation import enumerate_allocations, power_of_two_options
from repro.rago.batching import batch_options
from repro.rago.search import SearchConfig, SearchResult, search_schedules
from repro.rago.session import OptimizerSession, SweepCell, SweepResult
from repro.rago.optimizer import RAGO
from repro.rago.objectives import (
    ServiceObjective,
    knee_point,
    select_max_throughput,
    select_min_ttft,
)
from repro.rago.cost import CostEstimate, PriceBook, cheapest_point, estimate_cost

__all__ = [
    "ParetoPoint",
    "pareto_front",
    "enumerate_placements",
    "enumerate_allocations",
    "power_of_two_options",
    "batch_options",
    "SearchConfig",
    "SearchResult",
    "search_schedules",
    "OptimizerSession",
    "SweepCell",
    "SweepResult",
    "RAGO",
    "ServiceObjective",
    "select_max_throughput",
    "select_min_ttft",
    "knee_point",
    "PriceBook",
    "CostEstimate",
    "estimate_cost",
    "cheapest_point",
]
