"""Session-based optimizer front-end.

:class:`OptimizerSession` replaces one-shot ``RAGO(...).optimize()``
with a stateful workflow object:

* **chainable intent** -- ``.with_constraint(max_ttft=0.2)`` and
  ``.with_objective("min_ttft")`` accumulate what "best" means before
  any search runs;
* **memoization** -- searches and schedule evaluations are cached,
  keyed by the serialized (schema, cluster, search-config / schedule)
  triple, so interactive exploration never repeats a sweep;
* **scale** -- :meth:`OptimizerSession.sweep` fans a grid of
  (schema, cluster) cells out over a pluggable executor backend
  (:mod:`repro.distrib`: in-process, multiprocessing pool, or a
  work-stealing socket fleet) and returns a tidy result table.

Example::

    from repro import ClusterSpec, OptimizerSession
    from repro.schema import pipeline
    from repro.schema.paradigms import HYPERSCALE_DATABASE

    schema = (pipeline("my-rag")
              .retrieve(HYPERSCALE_DATABASE, neighbors=5)
              .generate("8B")
              .build())
    best = (OptimizerSession(schema, ClusterSpec(num_servers=16))
            .with_constraint(max_ttft=0.2)
            .best())

:class:`~repro.rago.optimizer.RAGO` remains as a thin facade over one
session, so existing call sites keep working unchanged.
"""

from __future__ import annotations

import copy
import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.distrib import (
    SweepJob,
    TaskSpec,
    memory_to_payload,
    resolve_sweep_backend,
)
from repro.errors import ConfigError, ScheduleError
from repro.hardware.cluster import ClusterSpec
from repro.inference.memory import MemoryModel
from repro.pipeline.assembly import PipelinePerf, Schedule, assemble
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.objectives import (
    ServiceObjective,
    admissible,
    knee_point,
    select_max_throughput,
    select_min_ttft,
)
from repro.rago.provisioning import ProvisioningResult, provision
from repro.rago.search import SearchConfig, SearchResult, search_schedules
from repro.schema.builder import PipelineBuilder
from repro.schema.ragschema import RAGSchema
from repro.sim.autoscale import Autoscaler, AutoscaleConfig
from repro.sim.engine import ServingEngine
from repro.sim.fleet import FleetEngine
from repro.sim.policies import (
    AdmissionPolicy,
    DispatchPolicy,
    resolve_admission_policy,
    resolve_dispatch_policy,
)
from repro.sim.routing import RoutingPolicy
from repro.sim.serving import ServingReport, ServingSimulator, SLOTarget
from repro.workloads.traces import RequestTrace

#: A selector turns (result, objective) into the chosen frontier point.
Selector = Callable[[SearchResult, ServiceObjective], PipelinePerf]


def _constrained_knee(result: SearchResult,
                      objective: ServiceObjective) -> PipelinePerf:
    """Knee of the admissible sub-frontier (constraints still apply)."""
    candidates = admissible(result, objective)
    if not candidates:
        raise ScheduleError(
            f"no schedule satisfies {objective} on this frontier"
        )
    return knee_point(SearchResult(frontier=candidates))


_SELECTORS: Dict[str, Selector] = {
    "max_qps_per_chip": select_max_throughput,
    "min_ttft": select_min_ttft,
    "knee": _constrained_knee,
}


def _config_key(*objects: Any) -> str:
    """Stable memo key: the concatenated config JSON of the inputs."""
    from repro import config

    return "\x1e".join(config.dumps(obj, indent=None) for obj in objects)


def _copy_result(result: SearchResult) -> SearchResult:
    """Defensive copy of a memoized result.

    SearchResult's containers are mutable; handing the cached object
    out directly would let a caller's in-place edit (say, filtering the
    frontier for display) silently corrupt every later memoized answer.
    Frontier points are frozen but carry a mutable ``stage_perfs`` dict,
    so each point is copied with its own dict; ``per_plan`` entries are
    fully immutable (tuples all the way down).
    """
    frontier = [replace(perf, stage_perfs=dict(perf.stage_perfs))
                for perf in result.frontier]
    return SearchResult(frontier=frontier,
                        num_plans=result.num_plans,
                        num_candidates=result.num_candidates,
                        per_plan=list(result.per_plan))


class OptimizerSession:
    """A stateful, memoizing optimizer for one workload on one cluster.

    Args:
        schema: The workload -- a built :class:`RAGSchema` or a
            :class:`~repro.schema.builder.PipelineBuilder` still in
            progress (it is built here).
        cluster: Hardware budget (library default when None).
        memory: Optional memory-accounting override.
        search: Default search knobs for this session.
    """

    def __init__(self, schema: Union[RAGSchema, PipelineBuilder],
                 cluster: Optional[ClusterSpec] = None,
                 memory: Optional[MemoryModel] = None,
                 search: Optional[SearchConfig] = None) -> None:
        if isinstance(schema, PipelineBuilder):
            schema = schema.build()
        if not isinstance(schema, RAGSchema):
            raise ConfigError(
                f"schema must be a RAGSchema or PipelineBuilder, got "
                f"{type(schema).__name__}"
            )
        self._cluster = cluster or ClusterSpec()
        self._memory = memory
        self._perf_model = RAGPerfModel(schema, self._cluster, memory)
        self._search = search or SearchConfig()
        self._objective = ServiceObjective()
        self._selector: Selector = select_max_throughput
        self._results: Dict[str, SearchResult] = {}
        self._evaluations: Dict[str, PipelinePerf] = {}
        self._trace_reports: Dict[str, ServingReport] = {}
        # Schema and cluster are fixed for the session's lifetime, so
        # their share of the memo key is serialized once.
        self._base_key = _config_key(schema, self._cluster)

    # -- introspection -------------------------------------------------

    @property
    def schema(self) -> RAGSchema:
        """The workload being optimized."""
        return self._perf_model.schema

    @property
    def cluster(self) -> ClusterSpec:
        """The hardware budget."""
        return self._cluster

    @property
    def perf_model(self) -> RAGPerfModel:
        """Stage-level cost model (shared caches)."""
        return self._perf_model

    @property
    def objective(self) -> ServiceObjective:
        """Accumulated serving constraints."""
        return self._objective

    @property
    def search_config(self) -> SearchConfig:
        """Session-default search knobs."""
        return self._search

    # -- chainable intent ----------------------------------------------
    #
    # Every with_* method returns a DERIVED session (the original is
    # untouched, true to the name); the perf model and memo caches are
    # shared between derivations, so chaining never re-searches.

    def _derive(self, **attrs: Any) -> "OptimizerSession":
        derived = copy.copy(self)  # shallow: shares perf model + memos
        for name, value in attrs.items():
            setattr(derived, name, value)
        return derived

    def with_constraint(self, max_ttft: Optional[float] = None,
                        max_tpot: Optional[float] = None,
                        min_qps_per_chip: Optional[float] = None,
                        ) -> "OptimizerSession":
        """Derived session with added serving constraints (None leaves
        a bound unchanged; constraints accumulate along a chain)."""
        return self._derive(_objective=ServiceObjective(
            max_ttft=max_ttft if max_ttft is not None
            else self._objective.max_ttft,
            max_tpot=max_tpot if max_tpot is not None
            else self._objective.max_tpot,
            min_qps_per_chip=min_qps_per_chip if min_qps_per_chip is not None
            else self._objective.min_qps_per_chip,
        ))

    def with_objective(self,
                       selector: Union[str, Selector]) -> "OptimizerSession":
        """Derived session with a different :meth:`best` selector.

        Args:
            selector: ``"max_qps_per_chip"`` (default), ``"min_ttft"``,
                ``"knee"``, or a callable ``(result, objective) ->
                PipelinePerf``.
        """
        if callable(selector):
            return self._derive(_selector=selector)
        try:
            return self._derive(_selector=_SELECTORS[selector])
        except KeyError:
            known = ", ".join(sorted(_SELECTORS))
            raise ConfigError(
                f"unknown objective {selector!r}; known: {known}"
            ) from None

    def with_search(self, config: Optional[SearchConfig] = None,
                    **overrides: Any) -> "OptimizerSession":
        """Derived session with replaced or tweaked search knobs.

        ``with_search(max_batch=64)`` tweaks the current config;
        ``with_search(SearchConfig(...))`` replaces it outright.
        """
        base = config if config is not None else self._search
        try:
            new = replace(base, **overrides) if overrides else base
        except TypeError as error:
            raise ConfigError(f"unknown search fields: {error}") from error
        return self._derive(_search=new)

    # -- execution -----------------------------------------------------

    def optimize(self, search: Optional[SearchConfig] = None) -> SearchResult:
        """Run (or recall) the schedule search.

        Results are memoized per (schema, cluster, search config); a
        repeated call with the same knobs returns the cached frontier
        without re-searching.
        """
        config = search or self._search
        key = self._base_key + "\x1e" + _config_key(config)
        if key not in self._results:
            self._results[key] = search_schedules(self._perf_model, config)
        return _copy_result(self._results[key])

    def frontier(self,
                 search: Optional[SearchConfig] = None) -> List[PipelinePerf]:
        """The Pareto frontier (memoized search)."""
        return self.optimize(search).frontier

    def best(self, search: Optional[SearchConfig] = None) -> PipelinePerf:
        """The frontier point matching the accumulated constraints and
        objective.

        Raises:
            ScheduleError: when no frontier point satisfies the
                constraints.
        """
        return self._selector(self.optimize(search), self._objective)

    def evaluate(self, schedule: Schedule) -> PipelinePerf:
        """Evaluate one explicit schedule (memoized; no search)."""
        key = self._base_key + "\x1e" + _config_key(schedule)
        if key not in self._evaluations:
            self._evaluations[key] = assemble(self._perf_model, schedule)
        cached = self._evaluations[key]
        # PipelinePerf is frozen but carries a mutable stage_perfs dict.
        return replace(cached, stage_perfs=dict(cached.stage_perfs))

    def evaluate_trace(self, schedule: Schedule, trace: RequestTrace,
                       slo: Optional[SLOTarget] = None,
                       max_wait: Optional[float] = None,
                       dispatch: Union[None, str, DispatchPolicy] = None,
                       admission: Union[None, str, AdmissionPolicy] = None,
                       ) -> ServingReport:
        """Replay a request trace through one schedule (memoized DES).

        The discrete-event counterpart of :meth:`evaluate`: where the
        analytical evaluation answers "what does this schedule promise
        in steady state", a trace replay answers "what does it deliver
        under this traffic". Results are memoized per (schema, cluster,
        schedule, trace, SLO, policies), so sweeping schedules over a
        fixed trace (or traces over a fixed schedule) never
        re-simulates a cell.

        Args:
            schedule: The deployment to exercise.
            trace: The traffic to replay (see
                :mod:`repro.workloads.traces`).
            slo: Latency targets for attainment accounting; None
                derives targets from this session's accumulated
                constraints (unconstrained dimensions stay unscored).
            max_wait: Optional partial-batch deadline override passed
                to the simulator.
            dispatch: Optional dispatch policy (instance or registry
                name) for the pre-decode stations.
            admission: Optional decode admission policy (instance or
                registry name).

        Returns:
            The replay's :class:`~repro.sim.ServingReport`.
        """
        if slo is None:
            slo = SLOTarget(ttft=self._objective.max_ttft,
                            tpot=self._objective.max_tpot)
        policy = resolve_dispatch_policy(dispatch)
        admit = resolve_admission_policy(admission)
        # A recorded trace can hold 100k+ requests; keep the memo key
        # fixed-size by digesting the serialized (schedule, trace) pair
        # instead of storing megabytes of JSON per entry.
        digest = hashlib.sha256(
            _config_key(schedule, trace).encode("utf-8")).hexdigest()
        key = "\x1e".join((self._base_key, digest,
                           f"slo={slo.ttft}:{slo.tpot}",
                           f"max_wait={max_wait}",
                           f"dispatch={policy!r}",
                           f"admission={admit!r}"))
        if key not in self._trace_reports:
            simulator = ServingSimulator(self._perf_model, schedule,
                                         max_wait=max_wait,
                                         dispatch=policy,
                                         admission=admit)
            self._trace_reports[key] = simulator.run(trace, slo=slo)
        cached = self._trace_reports[key]
        # Reports are frozen but carry mutable aggregate dicts and
        # mutable per-request records; hand out copies (records deep,
        # they nest dicts) so callers cannot corrupt the memo. For huge
        # recorded traces the record copy dominates a cache hit -- a
        # deliberate trade of hit speed for isolation; aggregate-only
        # consumers can drop `records` entirely via the config envelope.
        return replace(
            cached,
            slo_attainment=dict(cached.slo_attainment),
            ttft=dict(cached.ttft),
            tpot=dict(cached.tpot),
            queueing={stage: dict(stats)
                      for stage, stats in cached.queueing.items()},
            utilization=dict(cached.utilization),
            trace_metadata=dict(cached.trace_metadata),
            records=copy.deepcopy(cached.records),
        )

    def serving_engine(self, schedule: Optional[Schedule] = None,
                       max_wait: Optional[float] = None, seed: int = 0,
                       dispatch: Union[None, str, DispatchPolicy] = None,
                       admission: Union[None, str, AdmissionPolicy] = None,
                       ) -> ServingEngine:
        """An incremental DES engine serving one schedule live.

        The entry point behind ``repro serve``: where
        :meth:`evaluate_trace` replays a pre-built trace open loop,
        the returned :class:`~repro.sim.ServingEngine` accepts
        interleaved ``submit``/``step`` calls, so a live front-end
        (:class:`repro.serve.LiveServer`) can feed it requests as they
        arrive on a socket. Engines are single-use and never memoized.

        Args:
            schedule: The deployment to serve; None serves the **knee**
                of this session's (memoized) search frontier under the
                accumulated constraints -- the balanced
                latency/throughput point a live deployment usually
                wants.
            max_wait / seed / dispatch / admission: Engine knobs, as in
                :meth:`evaluate_trace`.
        """
        if schedule is None:
            schedule = _constrained_knee(self.optimize(),
                                         self._objective).schedule
        return ServingEngine(self._perf_model, schedule,
                             max_wait=max_wait, seed=seed,
                             dispatch=dispatch, admission=admission)

    def provision(self, target_qps: float,
                  objective: Optional[ServiceObjective] = None,
                  search: Optional[SearchConfig] = None,
                  ) -> ProvisioningResult:
        """Size a fleet for a target load (memoized frontier reuse).

        The inverse scheduling problem on this session's workload and
        cluster: how few chips -- replicated Pareto-optimal schedules
        -- sustain ``target_qps`` within the SLOs? The underlying
        frontier comes from :meth:`optimize`, so provisioning shares
        the session's search memo.

        Args:
            target_qps: Requests per second the fleet must sustain.
            objective: Latency SLOs each schedule must meet; None uses
                this session's accumulated constraints.
            search: Search knobs (session default when None).

        Returns:
            The cheapest admissible
            :class:`~repro.rago.provisioning.ProvisioningResult`;
            feed it to :meth:`fleet_engine` to test the replica count
            under replayed or live traffic.
        """
        return provision(self._perf_model, target_qps,
                         objective=objective or self._objective,
                         result=self.optimize(search))

    def fleet_engine(self, schedule: Optional[Schedule] = None,
                     replicas: Optional[int] = None,
                     routing: Union[None, str, RoutingPolicy] = None,
                     max_wait: Optional[float] = None, seed: int = 0,
                     dispatch: Union[None, str, DispatchPolicy] = None,
                     admission: Union[None, str, AdmissionPolicy] = None,
                     provisioning: Optional[ProvisioningResult] = None,
                     ) -> FleetEngine:
        """A multi-replica DES fleet serving this session's workload.

        The scale-out sibling of :meth:`serving_engine` -- and the
        bridge from the analytical provisioning model to live load:
        pass a :class:`~repro.rago.provisioning.ProvisioningResult`
        (usually straight from :meth:`provision`) and the fleet is
        built with exactly the schedule and replica count the model
        chose, ready to be validated against a replayed trace or a
        live socket session. Fleets are single-use and never memoized.

        Args:
            schedule: Per-replica deployment; None uses the
                provisioning result's schedule (or, lacking one, the
                knee of the memoized frontier, as in
                :meth:`serving_engine`).
            replicas: Slot count; None uses the provisioning result's
                replica count (or 1).
            routing: Request-routing policy instance or registry name
                (round robin when None).
            max_wait / seed / dispatch / admission: Per-replica engine
                knobs, as in :meth:`evaluate_trace`.
            provisioning: Optional sizing to realize; explicit
                ``schedule`` / ``replicas`` arguments override its
                fields individually.
        """
        if provisioning is not None:
            if schedule is None:
                schedule = provisioning.perf.schedule
            if replicas is None:
                replicas = provisioning.replicas
        if schedule is None:
            schedule = _constrained_knee(self.optimize(),
                                         self._objective).schedule
        return FleetEngine(self._perf_model, schedule,
                           replicas=1 if replicas is None else replicas,
                           routing=routing, max_wait=max_wait, seed=seed,
                           dispatch=dispatch, admission=admission)

    def autoscaled_fleet(self, trough_qps: float, peak_qps: float,
                         autoscale: Optional[AutoscaleConfig] = None,
                         routing: Union[None, str, RoutingPolicy] = None,
                         slo: Optional[SLOTarget] = None,
                         max_wait: Optional[float] = None, seed: int = 0,
                         dispatch: Union[None, str, DispatchPolicy] = None,
                         admission: Union[None, str,
                                          AdmissionPolicy] = None,
                         ) -> Autoscaler:
        """An elastic fleet sized by the provisioning model.

        The autoscaling counterpart of :meth:`fleet_engine`: the
        replica bounds come from :meth:`provision` -- the peak load
        fixes the schedule and the ``max_replicas`` ceiling, the
        trough fixes ``min_replicas`` (the floor a diurnal night
        shift can shrink to) -- and the fleet is built at the floor,
        ready for :meth:`~repro.sim.autoscale.Autoscaler.run_trace`
        or a live :class:`~repro.serve.LiveServer` session.

        Args:
            trough_qps: The lightest sustained load the fleet must
                absorb (sizes ``min_replicas``).
            peak_qps: The heaviest (sizes ``max_replicas`` and picks
                the per-replica schedule).
            autoscale: Controller settings; the provisioned bounds
                **override** its ``min_replicas`` / ``max_replicas``
                (that is this method's contract); policy, interval,
                cooldown and thresholds pass through. None uses the
                config defaults.
            routing: Fleet request-routing policy (round robin when
                None).
            slo: Targets behind the controller's windowed attainment
                statistic; None derives them from this session's
                accumulated constraints.
            max_wait / seed / dispatch / admission: Per-replica
                engine knobs, as in :meth:`evaluate_trace`.

        Raises:
            ConfigError: on a non-positive or inverted load band.
        """
        if trough_qps <= 0 or peak_qps <= 0:
            raise ConfigError("trough_qps and peak_qps must be positive")
        if trough_qps > peak_qps:
            raise ConfigError(
                f"trough_qps={trough_qps} must not exceed "
                f"peak_qps={peak_qps}")
        peak = self.provision(peak_qps)
        schedule = peak.perf.schedule
        min_replicas = min(math.ceil(trough_qps / peak.perf.qps),
                           peak.replicas)
        config = autoscale or AutoscaleConfig()
        config = replace(config, min_replicas=min_replicas,
                         max_replicas=peak.replicas)
        fleet = FleetEngine(self._perf_model, schedule,
                            replicas=min_replicas, routing=routing,
                            max_wait=max_wait, seed=seed,
                            dispatch=dispatch, admission=admission)
        if slo is None:
            slo = SLOTarget(ttft=self._objective.max_ttft,
                            tpot=self._objective.max_tpot)
        return Autoscaler.from_config(fleet, config, slo=slo)

    def cache_info(self) -> Dict[str, int]:
        """Memo sizes (searches, schedule evaluations and trace replays
        held)."""
        return {"results": len(self._results),
                "evaluations": len(self._evaluations),
                "trace_reports": len(self._trace_reports)}

    # -- sweeps --------------------------------------------------------

    def sweep(self, schemas: Optional[Sequence[RAGSchema]] = None,
              clusters: Optional[Sequence[ClusterSpec]] = None,
              search: Optional[SearchConfig] = None,
              processes: int = 1,
              backend: Optional[Any] = None) -> "SweepResult":
        """Search every (schema, cluster) cell of a grid.

        Args:
            schemas: Workload axis; defaults to this session's schema.
            clusters: Hardware axis; defaults to this session's cluster.
            search: Search knobs for every cell (session default when
                None).
            processes: Worker count for the executor backend. With the
                default backend selection, 1 runs in-process and >1
                fans cells out over a local multiprocessing pool.
                Either way every successful cell lands in this
                session's memo, so repeated sweeps (and optimize()
                calls overlapping the grid) reuse results.
            backend: Executor override -- a
                :data:`~repro.distrib.SWEEP_BACKENDS` name
                (``serial`` / ``process`` / ``sockets``) or a
                :class:`~repro.distrib.SweepBackend` instance. All
                backends produce bit-identical tables; None keeps the
                processes-based default.

        Returns:
            A :class:`SweepResult` table; infeasible cells carry an
            error string instead of aborting the sweep.
        """
        from repro import config as config_module

        if processes < 1:
            raise ConfigError("processes must be at least 1")
        schema_axis: List[RAGSchema] = list(schemas) if schemas is not None \
            else [self.schema]
        cluster_axis: List[ClusterSpec] = list(clusters) \
            if clusters is not None else [self._cluster]
        if not schema_axis or not cluster_axis:
            raise ConfigError("sweep axes must be non-empty")
        for schema in schema_axis:
            if isinstance(schema, PipelineBuilder):
                raise ConfigError("build() pipelines before sweeping them")
        config = search or self._search
        cells = [(schema, cluster) for schema in schema_axis
                 for cluster in cluster_axis]
        # Cell memo keys use the same layout as optimize()'s, so sweep
        # cells and direct optimize() calls share one cache; duplicate
        # grid cells are searched once.
        keys = [_config_key(schema, cluster) + "\x1e" + _config_key(config)
                for schema, cluster in cells]
        by_key: Dict[str, Tuple[Optional[SearchResult], Optional[str]]] = {
            key: (self._results[key], None) for key in keys
            if key in self._results}
        pending: List[Tuple[int, str]] = []
        for index, key in enumerate(keys):
            if key not in by_key:
                by_key[key] = (None, "pending")
                pending.append((index, key))
        workers: Tuple[Dict[str, Any], ...] = ()
        if pending:
            task = TaskSpec(kind="search", context={
                "search": config_module.to_config(config),
                "memory": memory_to_payload(self._memory),
            })
            jobs = [SweepJob(index=index, payload={
                "schema": config_module.to_config(cells[index][0]),
                "cluster": config_module.to_config(cells[index][1]),
            }) for index, _ in pending]
            run = resolve_sweep_backend(backend, workers=processes) \
                .run(task, jobs)
            workers = tuple(run.workers)
            for (_, key), outcome in zip(pending, run.outcomes):
                result = None if outcome["result"] is None \
                    else config_module.from_config(outcome["result"])
                by_key[key] = (result, outcome["error"])
        for key, (result, _) in by_key.items():
            if result is not None:
                self._results.setdefault(key, result)
        outcomes = [by_key[key] for key in keys]
        return SweepResult(cells=tuple(
            SweepCell(schema=schema, cluster=cluster,
                      result=None if result is None else _copy_result(result),
                      error=error)
            for (schema, cluster), (result, error) in zip(cells, outcomes)
        ), workers=workers)

    def whatif(self, trace: RequestTrace, grid,
               slo: Optional[SLOTarget] = None,
               backend: Optional[Any] = None, workers: int = 1,
               cache: Optional[Any] = None):
        """Replay one recorded trace against a policy grid.

        Convenience wrapper over :func:`repro.rago.whatif.run_whatif`
        bound to this session's schema, cluster and memory override.
        The SLO defaults to this session's objective ceilings.

        Args:
            trace: The recorded trace every cell replays.
            grid: A :class:`~repro.rago.whatif.WhatIfGrid`.
            slo: Attainment targets; None uses the session objective.
            backend / workers: Executor selection, as in :meth:`sweep`.
            cache: A :class:`~repro.rago.whatif.WhatIfCache`, a cache
                directory path, or None to recompute every cell.

        Returns:
            A :class:`~repro.rago.whatif.WhatIfResult`.
        """
        from repro.rago.whatif import run_whatif

        if slo is None:
            slo = SLOTarget(ttft=self._objective.max_ttft,
                            tpot=self._objective.max_tpot)
        return run_whatif(self.schema, self._cluster, trace, grid,
                          slo, memory=self._memory, backend=backend,
                          workers=workers, cache=cache)


# ---------------------------------------------------------------------------
# Sweep results. Execution lives in repro.distrib: cells travel as
# config JSON, so jobs serialize cheaply over any backend transport.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepCell:
    """One (schema, cluster) cell of a sweep grid.

    Attributes:
        schema: The cell's workload.
        cluster: The cell's hardware budget.
        result: The search outcome, or None when the cell failed.
        error: Failure description, or None on success.
    """

    schema: RAGSchema
    cluster: ClusterSpec
    result: Optional[SearchResult]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the cell searched successfully."""
        return self.result is not None


@dataclass(frozen=True)
class SweepResult:
    """Tidy outcome of :meth:`OptimizerSession.sweep`.

    Attributes:
        cells: One :class:`SweepCell` per grid cell, grid order.
        workers: Executor utilization records (worker name, cells
            resolved, duplicates, requeues) from the backend that ran
            the non-memoized cells. Excluded from equality -- two
            sweeps of the same grid are the same result no matter
            which backend (or how many workers) computed them.
    """

    cells: Tuple[SweepCell, ...]
    workers: Tuple[Dict[str, Any], ...] = field(
        default=(), compare=False, repr=False)

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """One flat record per cell (tidy-table form)."""
        rows = []
        for cell in self.cells:
            row: Dict[str, Any] = {
                "schema": cell.schema.name,
                "llm": cell.schema.generative_llm.name,
                "cluster_servers": cell.cluster.num_servers,
                "total_xpus": cell.cluster.total_xpus,
                "xpu": cell.cluster.xpu.name,
                "ok": cell.ok,
                "error": cell.error,
                "frontier_points": None,
                "best_qps_per_chip": None,
                "min_ttft": None,
            }
            if cell.result is not None and cell.result.frontier:
                row["frontier_points"] = len(cell.result.frontier)
                row["best_qps_per_chip"] = \
                    cell.result.max_qps_per_chip.qps_per_chip
                row["min_ttft"] = cell.result.min_ttft.ttft
            rows.append(row)
        return rows

    def to_table(self) -> str:
        """Render the rows as an aligned ASCII table."""
        columns = ("schema", "llm", "xpu", "cluster_servers",
                   "frontier_points", "best_qps_per_chip", "min_ttft",
                   "error")

        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        rows = [[fmt(row[column]) for column in columns]
                for row in self.rows]
        widths = [max(len(column), *(len(row[i]) for row in rows))
                  if rows else len(column)
                  for i, column in enumerate(columns)]
        lines = ["  ".join(column.ljust(width)
                           for column, width in zip(columns, widths))]
        lines.append("  ".join("-" * width for width in widths))
        for row in rows:
            lines.append("  ".join(value.ljust(width)
                                   for value, width in zip(row, widths)))
        return "\n".join(lines)


