"""Fig. 17: task-placement sensitivity.

Compares three placement policies -- fully collocated (all pre-prefix
stages share chips), fully disaggregated, and hybrid (RAGO's full
placement space) -- for Case II and Case IV. Paper claims: placement
barely matters in C-II (~2% max QPS/chip difference, both encode and
prefix are compute-intensive), while C-IV favours hybrid/disaggregated
plans by up to 1.5x because collocating the autoregressive rewriter
decode with prefix strands chips.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.placement import (
    enumerate_placements,
    fully_collocated,
    fully_disaggregated,
)
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.tables import format_table
from repro.schema.paradigms import case_ii_long_context, case_iv_rewriter_reranker


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the placement-sensitivity comparison."""
    cluster = default_cluster(cluster)
    max_batch = 32 if fast else 128
    max_decode = 256 if fast else 1024
    cases = {
        "C-II": case_ii_long_context(1_000_000, "70B"),
        "C-IV": case_iv_rewriter_reranker("70B"),
    }

    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name, schema in cases.items():
        pm = RAGPerfModel(schema, cluster)
        policies = {
            "collocated": [fully_collocated(schema)],
            "disaggregated": [fully_disaggregated(schema)],
            "hybrid (all)": enumerate_placements(schema),
        }
        data[name] = {}
        for policy, placements in policies.items():
            config = SearchConfig(max_batch=max_batch,
                                  max_decode_batch=max_decode,
                                  placements=placements)
            result = search_schedules(pm, config)
            data[name][policy] = result.max_qps_per_chip.qps_per_chip
        for policy, qps in data[name].items():
            rows.append((name, policy, qps,
                         qps / data[name]["collocated"]))

    text = format_table(
        ("case", "placement", "max QPS/chip", "vs collocated"),
        rows, title="Fig. 17: task placement sensitivity")
    c2_gap = (data["C-II"]["hybrid (all)"]
              / data["C-II"]["collocated"])
    c4_gap = (data["C-IV"]["hybrid (all)"]
              / data["C-IV"]["collocated"])
    notes = (f"C-II hybrid/collocated = {c2_gap:.2f}x (paper ~1.02x); "
             f"C-IV hybrid/collocated = {c4_gap:.2f}x (paper up to 1.5x)")
    return ExperimentOutput(exp_id="fig17",
                            title="Task placement sensitivity",
                            text=text, data=data, notes=notes)
