"""Fig. 11: RAG performance with query rewriter and reranker (Case IV).

Compares Case IV (8B rewriter + 120M reranker around hyperscale
retrieval) with plain Case I for the 8B and 70B generative models at a
fixed, latency-lean operating point (batch 1, latency-optimal sharding
per stage). Paper claims: QPS/chip is largely unaffected (rewriter and
reranker consume negligible time x resource), but TTFT rises ~2.4x
because the rewriter decodes autoregressively before retrieval can
start, while the reranker's impact is negligible.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.breakdown import time_breakdown
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.tables import format_table
from repro.schema.paradigms import case_i_hyperscale, case_iv_rewriter_reranker
from repro.schema.stages import Stage, ttft_stages

#: Latency-lean per-stage resources for the TTFT comparison.
STAGE_RESOURCES = {
    Stage.REWRITE_PREFIX: 4,
    Stage.REWRITE_DECODE: 4,
    Stage.RERANK: 4,
    Stage.PREFIX: 16,
}


def _batch1_ttft(pm: RAGPerfModel, servers: int) -> Dict[str, float]:
    """Per-stage batch-1 latency (latency-optimal plan) and their sum."""
    latencies: Dict[str, float] = {}
    total = 0.0
    for stage in ttft_stages(pm.schema):
        resource = servers if stage is Stage.RETRIEVAL \
            else STAGE_RESOURCES[stage]
        perf = pm.perf_options(stage, 1, resource)[0]
        latencies[str(stage)] = perf.latency
        total += perf.latency
    latencies["total"] = total
    return latencies


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the rewriter/reranker impact study."""
    cluster = default_cluster(cluster)
    servers = cluster.num_servers
    config = SearchConfig(max_batch=32 if fast else 128,
                          max_decode_batch=256 if fast else 1024)
    models = ("8B",) if fast else ("8B", "70B")

    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for label in models:
        plain_pm = RAGPerfModel(case_i_hyperscale(label), cluster)
        extended_pm = RAGPerfModel(case_iv_rewriter_reranker(label), cluster)
        plain_ttft = _batch1_ttft(plain_pm, servers)["total"]
        extended = _batch1_ttft(extended_pm, servers)
        ttft_ratio = extended["total"] / plain_ttft
        # Throughput comparison via the schedule search.
        plain_qps = search_schedules(plain_pm, config) \
            .max_qps_per_chip.qps_per_chip
        extended_qps = search_schedules(extended_pm, config) \
            .max_qps_per_chip.qps_per_chip
        qps_ratio = extended_qps / plain_qps
        rows.append((label, plain_ttft, extended["total"], ttft_ratio,
                     qps_ratio))
        data[label] = {
            "ttft_plain": plain_ttft,
            "ttft_with_rewriter": extended["total"],
            "ttft_ratio": ttft_ratio,
            "qps_ratio": qps_ratio,
            "rewrite_decode_latency": extended[str(Stage.REWRITE_DECODE)],
            "rerank_latency": extended[str(Stage.RERANK)],
        }

    text = format_table(
        ("LLM", "TTFT plain (s)", "TTFT w/ rewriter (s)", "TTFT ratio",
         "QPS ratio"),
        rows, title="Fig. 11: rewriter/reranker impact (batch 1)")

    breakdown = time_breakdown(
        RAGPerfModel(case_iv_rewriter_reranker(models[-1]), cluster))
    breakdown_rows = [(str(stage), 100 * share)
                      for stage, share in breakdown.items()]
    text += "\n\n" + format_table(
        ("stage", "time x resource (%)"), breakdown_rows,
        title=f"Fig. 11 breakdown: Case IV, {models[-1]} LLM")

    first = data[models[0]]
    notes = (f"rewriter raises TTFT {first['ttft_ratio']:.1f}x "
             f"(paper: 2.4x); QPS ratio {first['qps_ratio']:.2f} "
             f"(paper: ~1.0); rerank adds only "
             f"{1e3 * first['rerank_latency']:.1f} ms")
    return ExperimentOutput(
        exp_id="fig11",
        title="Rewriter/reranker impact",
        text=text,
        data={"models": data,
              "breakdown": {str(k): v for k, v in breakdown.items()}},
        notes=notes)
