"""Fig. 7: retrieval time share across hardware, retrieval configuration
and sequence lengths (Case I).

(a) XPU generation A/B/C x model size 1B-405B; (b) scanned database
fraction 0.01%-1%; (c) prefix length x decode length heatmap for the 8B
model. Paper claims: better accelerators raise the retrieval share by up
to ~25 points; more scanned bytes raise it sharply; longer sequences
shrink it (86.3% at 128/128 down to 30.9% at 2048/512).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.accelerator import XPU_GENERATIONS
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.breakdown import time_breakdown
from repro.pipeline.stage_perf import RAGPerfModel
from repro.reporting.figures import format_heatmap
from repro.reporting.tables import format_table
from repro.schema.paradigms import case_i_hyperscale
from repro.schema.stages import Stage
from repro.workloads.profile import SequenceProfile


def _retrieval_share(schema, cluster) -> float:
    shares = time_breakdown(RAGPerfModel(schema, cluster))
    return shares[Stage.RETRIEVAL]


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the three retrieval-share sensitivity studies."""
    base_cluster = default_cluster(cluster)
    models = ("8B", "70B") if fast else ("1B", "8B", "70B", "405B")

    # (a) XPU generations.
    xpu_rows = []
    xpu_data: Dict[str, Dict[str, float]] = {}
    for xpu in XPU_GENERATIONS:
        gen_cluster = ClusterSpec(num_servers=base_cluster.num_servers,
                                  xpus_per_server=base_cluster.xpus_per_server,
                                  xpu=xpu, cpu=base_cluster.cpu)
        row = [xpu.name]
        xpu_data[xpu.name] = {}
        for label in models:
            share = _retrieval_share(case_i_hyperscale(label), gen_cluster)
            row.append(100 * share)
            xpu_data[xpu.name][label] = share
        xpu_rows.append(tuple(row))
    text_a = format_table(("XPU",) + tuple(f"RAG {m}" for m in models),
                          xpu_rows,
                          title="Fig. 7a: % time in retrieval by XPU gen")

    # (b) Scanned-fraction sweep.
    fractions = (0.0001, 0.001, 0.01)
    scan_rows = []
    scan_data: Dict[float, Dict[str, float]] = {}
    for fraction in fractions:
        row = [f"{fraction:.2%}"]
        scan_data[fraction] = {}
        for label in models:
            share = _retrieval_share(
                case_i_hyperscale(label, scan_fraction=fraction),
                base_cluster)
            row.append(100 * share)
            scan_data[fraction][label] = share
        scan_rows.append(tuple(row))
    text_b = format_table(("scanned",) + tuple(f"RAG {m}" for m in models),
                          scan_rows,
                          title="Fig. 7b: % time in retrieval by scan "
                                "fraction")

    # (c) Sequence-length heatmap, 8B model.
    prefixes = (128, 512, 2048) if fast else (128, 256, 512, 1024, 2048)
    decodes = (128, 512) if fast else (128, 256, 512)
    cells: Dict[tuple, float] = {}
    for decode_len in decodes:
        for prefix_len in prefixes:
            profile = SequenceProfile().with_lengths(prefix_len=prefix_len,
                                                     decode_len=decode_len)
            schema = case_i_hyperscale("8B", sequences=profile)
            cells[(decode_len, prefix_len)] = 100 * _retrieval_share(
                schema, base_cluster)
    text_c = format_heatmap("Fig. 7c: % retrieval, 8B, by lengths",
                            "decode", "prefix", decodes, prefixes, cells,
                            fmt="{:.1f}")

    text = "\n\n".join((text_a, text_b, text_c))
    short = cells[(decodes[0], prefixes[0])]
    long = cells[(decodes[-1], prefixes[-1])]
    notes = (f"retrieval share falls from {short:.1f}% (short seqs) to "
             f"{long:.1f}% (long seqs); paper: 86.3% -> 30.9%")
    return ExperimentOutput(
        exp_id="fig7",
        title="Retrieval share vs XPU gen / scan fraction / lengths",
        text=text,
        data={"xpu": xpu_data, "scan": scan_data, "lengths": cells},
        notes=notes)
