"""Table 2: performance specifications of the three XPU generations."""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentOutput
from repro.hardware.accelerator import XPU_GENERATIONS
from repro.hardware.cluster import ClusterSpec
from repro.reporting.tables import format_table


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Render the XPU generation table."""
    rows = []
    data = {}
    for xpu in XPU_GENERATIONS:
        rows.append((
            xpu.name,
            xpu.peak_flops / 1e12,
            xpu.hbm_bytes / 1e9,
            xpu.mem_bandwidth / 1e9,
            xpu.interconnect_bandwidth / 1e9,
        ))
        data[xpu.name] = {
            "tflops": xpu.peak_flops / 1e12,
            "hbm_gb": xpu.hbm_bytes / 1e9,
            "mem_bw_gbps": xpu.mem_bandwidth / 1e9,
            "ici_bw_gbps": xpu.interconnect_bandwidth / 1e9,
        }
    text = format_table(
        ("XPU", "TFLOPS", "HBM (GB)", "Mem BW (GB/s)", "ICI BW (GB/s)"),
        rows, title="Table 2: XPU generations")
    return ExperimentOutput(exp_id="table2",
                            title="XPU generation specifications",
                            text=text, data=data)
