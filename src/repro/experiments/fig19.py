"""Fig. 19: TTFT reduction from micro-batching burst requests.

Three heatmaps: (a) Case I (70B) over queries-per-retrieval x burst
size; (b) Case II (70B) over context length x burst size, with the
database encoder in the pre-decode pipeline (each burst request carries
a fresh context); (c) Case IV over LLM size x burst size. Paper claims:
C-I only benefits at batch >= 8-16 (vector search latency is flat below
that), C-II benefits even at batch 2 (up to ~55%), C-IV is moderate
(~25%) because the rewriter's autoregressive decode has flat latency.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.microbatch import ttft_reduction
from repro.pipeline.stage_perf import RAGPerfModel
from repro.reporting.figures import format_heatmap
from repro.schema.paradigms import (
    case_i_hyperscale,
    case_ii_long_context,
    case_iv_rewriter_reranker,
)
from repro.schema.stages import Stage, ttft_stages

#: Per-stage resources used across the three case studies.
STAGE_XPUS = {
    Stage.DATABASE_ENCODE: 16,
    Stage.REWRITE_PREFIX: 4,
    Stage.REWRITE_DECODE: 4,
    Stage.RERANK: 4,
    Stage.PREFIX: 16,
}


def _resources(pm: RAGPerfModel, servers: int,
               include_encode: bool = False) -> Dict[Stage, int]:
    stages = list(ttft_stages(pm.schema))
    if include_encode and pm.schema.document_encoder is not None:
        stages = [Stage.DATABASE_ENCODE] + stages
    resources = {}
    for stage in stages:
        resources[stage] = servers if stage is Stage.RETRIEVAL \
            else STAGE_XPUS[stage]
    return resources


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the three micro-batching heatmaps."""
    cluster = default_cluster(cluster)
    servers = cluster.num_servers
    bursts = (2, 8, 32) if fast else (2, 4, 8, 16, 32)

    # (a) Case I, 70B: queries per retrieval 1-8.
    queries = (1, 8) if fast else (1, 2, 4, 8)
    cells_a: Dict[Tuple[int, int], float] = {}
    for count in queries:
        pm = RAGPerfModel(case_i_hyperscale("70B",
                                            queries_per_retrieval=count),
                          cluster)
        resources = _resources(pm, servers)
        for burst in bursts:
            # Report the best reduction across micro-batch choices.
            best = max(ttft_reduction(pm, resources, burst,
                                      [1, 2, 4, 8, 16]).values())
            cells_a[(count, burst)] = 100 * best
    text_a = format_heatmap("Fig. 19a: TTFT reduction (%), Case I 70B",
                            "queries", "burst", queries, bursts, cells_a,
                            fmt="{:.1f}")

    # (b) Case II, 70B: context lengths (encode in the burst pipeline).
    contexts = (100_000, 1_000_000) if fast else (100_000, 1_000_000,
                                                  10_000_000)
    cells_b: Dict[Tuple[int, int], float] = {}
    for context in contexts:
        pm = RAGPerfModel(case_ii_long_context(context, "70B"), cluster)
        resources = _resources(pm, servers, include_encode=True)
        stages = [Stage.DATABASE_ENCODE] + list(ttft_stages(pm.schema))
        for burst in bursts:
            best = max(ttft_reduction(pm, resources, burst,
                                      [1, 2, 4, 8, 16],
                                      stages=stages).values())
            cells_b[(context, burst)] = 100 * best
    text_b = format_heatmap("Fig. 19b: TTFT reduction (%), Case II 70B",
                            "context", "burst", contexts, bursts, cells_b,
                            fmt="{:.1f}")

    # (c) Case IV: LLM size.
    llms = ("8B",) if fast else ("8B", "70B")
    cells_c: Dict[Tuple[str, int], float] = {}
    for label in llms:
        pm = RAGPerfModel(case_iv_rewriter_reranker(label), cluster)
        resources = _resources(pm, servers)
        for burst in bursts:
            best = max(ttft_reduction(pm, resources, burst,
                                      [1, 2, 4, 8, 16]).values())
            cells_c[(label, burst)] = 100 * best
    text_c = format_heatmap("Fig. 19c: TTFT reduction (%), Case IV",
                            "LLM", "burst", llms, bursts, cells_c,
                            fmt="{:.1f}")

    text = "\n\n".join((text_a, text_b, text_c))
    best_b = max(cells_b.values())
    notes = (f"best C-II reduction {best_b:.0f}% (paper: up to 55%); C-I "
             f"needs large bursts; C-IV moderate")
    return ExperimentOutput(exp_id="fig19",
                            title="Micro-batching TTFT reduction",
                            text=text,
                            data={"case_i": cells_a, "case_ii": cells_b,
                                  "case_iv": cells_c},
                            notes=notes)
