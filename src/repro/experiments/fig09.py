"""Fig. 9: TPOT under iterative retrievals (Case III).

(a) TPOT vs decode batch size (1-1024) for 1/2/4/8 retrievals per
sequence; (b) TPOT vs iterative retrieval batch size for decode batches
4-256 with the 70B model and 4 retrievals. Step and iteration latencies
come from the calibrated cost models; the stall dynamics come from the
discrete-event simulation of §5.3.

Paper claims: TPOT grows with both retrieval frequency and decode batch
size; at small decode batches, larger iterative batches stall decoding,
while at decode batch 256 the relationship reverses; decode batch 64 has
a sweet spot around iterative batch 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.iterative import simulate_iterative_decode
from repro.pipeline.stage_perf import RAGPerfModel
from repro.reporting.figures import format_series
from repro.schema.paradigms import case_iii_iterative
from repro.schema.stages import Stage

#: Chips given to the generative LLM's prefix and decode stages.
PREFIX_XPUS = 16
DECODE_XPUS = 16


def _latency_models(pm: RAGPerfModel, servers: int):
    """(step_latency(batch), iteration_latency(batch)) closures."""

    def step_latency(batch: int) -> float:
        decode = pm.perf(Stage.DECODE, batch, DECODE_XPUS)
        return decode.latency / pm.schema.sequences.decode_len

    def iteration_latency(batch: int) -> float:
        retrieval = pm.perf(Stage.RETRIEVAL, batch, servers)
        prefix = pm.perf(Stage.PREFIX, batch, PREFIX_XPUS)
        return retrieval.latency + prefix.latency

    return step_latency, iteration_latency


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate both TPOT sensitivity studies."""
    cluster = default_cluster(cluster)
    servers = cluster.num_servers
    decode_len = 256

    # (a) Retrieval-frequency sweep; iterative batch tracks decode batch.
    frequencies = (1, 4) if fast else (1, 2, 4, 8)
    decode_batches = (4, 64, 256) if fast else (1, 4, 16, 64, 256, 1024)
    series_a: Dict[str, List[Tuple[int, float]]] = {}
    for freq in frequencies:
        pm = RAGPerfModel(case_iii_iterative("70B",
                                             retrieval_frequency=freq),
                          cluster)
        step_fn, iter_fn = _latency_models(pm, servers)
        points = []
        for batch in decode_batches:
            result = simulate_iterative_decode(
                decode_batch=batch,
                iterative_batch=batch,
                decode_len=decode_len,
                retrievals_per_seq=freq - 1,
                step_latency=step_fn(batch),
                iteration_latency=iter_fn(batch) if freq > 1 else 0.0,
                seed=freq,
            )
            points.append((batch, result.worst_tpot))
        label = f"{freq} retrieval" + ("s" if freq > 1 else " (no iter)")
        series_a[label] = points

    # (b) Iterative-batch sweep at 4 retrievals.
    pm4 = RAGPerfModel(case_iii_iterative("70B", retrieval_frequency=4),
                       cluster)
    step_fn, iter_fn = _latency_models(pm4, servers)
    decode_batches_b = (4, 64) if fast else (4, 16, 64, 256)
    iterative_batches = (1, 4, 16, 64) if fast else (1, 4, 16, 64)
    series_b: Dict[str, List[Tuple[int, float]]] = {}
    for batch in decode_batches_b:
        points = []
        for iter_batch in iterative_batches:
            result = simulate_iterative_decode(
                decode_batch=batch,
                iterative_batch=iter_batch,
                decode_len=decode_len,
                retrievals_per_seq=3,
                step_latency=step_fn(batch),
                iteration_latency=iter_fn(iter_batch),
                seed=batch,
            )
            points.append((iter_batch, result.worst_tpot))
        series_b[f"dec batch = {batch}"] = points

    text = format_series("Fig. 9a: TPOT vs decode batch by frequency",
                         "decode batch", "TPOT (s)", series_a)
    text += "\n\n" + format_series(
        "Fig. 9b: TPOT vs iterative batch (70B, 4 retrievals)",
        "iterative batch", "TPOT (s)", series_b)
    return ExperimentOutput(
        exp_id="fig9",
        title="Iterative retrieval TPOT sensitivity",
        text=text,
        data={"frequency_sweep": series_a, "iterative_batch_sweep": series_b},
        notes="TPOT grows with retrieval frequency and decode batch size")
