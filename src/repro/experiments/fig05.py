"""Fig. 5: larger LLM-only systems versus RAG with smaller models.

QPS/chip vs. TTFT Pareto for RAG 1B / RAG 8B (Case I, hyperscale
retrieval) against LLM-only 8B / 70B (question-only prompts). Paper
claims: RAG 8B outperforms LLM-only 70B by ~1.5x QPS/chip; RAG 1B and
RAG 8B land close together because retrieval is the shared bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.llm_only import llm_only_search
from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.figures import format_series
from repro.schema.paradigms import case_i_hyperscale


def _frontier_points(result) -> List[Tuple[float, float]]:
    return [(perf.ttft, perf.qps_per_chip) for perf in result.frontier]


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the RAG vs LLM-only Pareto comparison."""
    cluster = default_cluster(cluster)
    config = SearchConfig(max_batch=64 if fast else 128,
                          max_decode_batch=512 if fast else 1024)

    series: Dict[str, List[Tuple[float, float]]] = {}
    summary: Dict[str, float] = {}
    for label in ("1B", "8B"):
        pm = RAGPerfModel(case_i_hyperscale(label), cluster)
        result = search_schedules(pm, config)
        series[f"RAG {label}"] = _frontier_points(result)
        summary[f"rag_{label.lower()}_max_qps_per_chip"] = \
            result.max_qps_per_chip.qps_per_chip
    for label in ("8B", "70B"):
        result = llm_only_search(label, cluster, config)
        series[f"LLM-only {label}"] = _frontier_points(result)
        summary[f"llm_only_{label.lower()}_max_qps_per_chip"] = \
            result.max_qps_per_chip.qps_per_chip

    ratio = (summary["rag_8b_max_qps_per_chip"]
             / summary["llm_only_70b_max_qps_per_chip"])
    summary["rag8b_over_llm70b"] = ratio
    text = format_series("Fig. 5: RAG vs LLM-only (Case I)",
                         "TTFT (s)", "QPS/chip", series)
    notes = (f"RAG 8B / LLM-only 70B max QPS-per-chip = {ratio:.2f}x "
             f"(paper: ~1.5x)")
    return ExperimentOutput(exp_id="fig5",
                            title="RAG vs LLM-only QPS/chip-TTFT Pareto",
                            text=text, data={"series": series,
                                             "summary": summary},
                            notes=notes)
