"""Fig. 15: RAGO versus the LLM-system-extension baseline.

Pareto frontiers for Case II (long-context, 1M tokens, 70B) and Case IV
(rewriter + reranker, 70B). Paper claims: RAGO reaches 1.7x (C-II) and
1.5x (C-IV) higher maximum QPS/chip than the tuned extension baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.extension import extension_baseline_search
from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.figures import format_series
from repro.schema.paradigms import case_ii_long_context, case_iv_rewriter_reranker


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the RAGO-vs-baseline frontier comparison."""
    cluster = default_cluster(cluster)
    config = SearchConfig(max_batch=32 if fast else 128,
                          max_decode_batch=256 if fast else 1024)
    cases = {
        "C-II": case_ii_long_context(1_000_000, "70B"),
        "C-IV": case_iv_rewriter_reranker("70B"),
    }

    series: Dict[str, List[Tuple[float, float]]] = {}
    speedups: Dict[str, float] = {}
    for name, schema in cases.items():
        pm = RAGPerfModel(schema, cluster)
        rago = search_schedules(pm, config)
        baseline = extension_baseline_search(
            pm, max_batch=config.max_batch,
            max_decode_batch=config.max_decode_batch)
        series[f"{name} RAGO"] = [(p.ttft, p.qps_per_chip)
                                  for p in rago.frontier]
        series[f"{name} baseline"] = [(p.ttft, p.qps_per_chip)
                                      for p in baseline.frontier]
        speedups[name] = (rago.max_qps_per_chip.qps_per_chip
                          / baseline.max_qps_per_chip.qps_per_chip)

    text = format_series("Fig. 15: RAGO vs LLM-extension baseline",
                         "TTFT (s)", "QPS/chip", series)
    from repro.reporting.ascii_plot import ascii_scatter

    for name in cases:
        pair = {label: series[label]
                for label in (f"{name} RAGO", f"{name} baseline")}
        text += f"\n\n{name}:\n" + ascii_scatter(
            pair, width=56, height=12, x_label="TTFT (s)",
            y_label="QPS/chip", log_x=True)
    notes = (f"max QPS/chip speedups: C-II {speedups['C-II']:.2f}x "
             f"(paper 1.7x), C-IV {speedups['C-IV']:.2f}x (paper 1.5x)")
    return ExperimentOutput(exp_id="fig15",
                            title="RAGO vs LLM-extension Pareto",
                            text=text,
                            data={"series": series, "speedups": speedups},
                            notes=notes)
