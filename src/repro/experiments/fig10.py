"""Fig. 10: decode idleness caused by batched iterative retrievals.

Normalized decoding latency (vs. no retrieval) over a grid of decode
batch size x iterative retrieval batch size, with the retrieval + prefix
latency forced to zero so all slowdown comes from waiting to fill the
iterative batch. Paper claims: latency peaks (~2.77x at 64/64, up to
~3.08x) when the iterative batch is comparable to or exceeds the decode
batch; small iterative batches keep it near 1x.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.iterative import simulate_iterative_decode
from repro.reporting.figures import format_heatmap

#: The paper triggers retrievals during a 256-token decode; the heatmap
#: isolates batching idleness with 4 total retrievals (3 iterative).
DECODE_LEN = 256
ITERATIVE_RETRIEVALS = 3


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the idleness heatmap."""
    default_cluster(cluster)  # validated for interface symmetry
    decode_batches = (4, 64, 256) if fast else (4, 8, 16, 64, 128, 256)
    iterative_batches = (1, 8, 64, 256) if fast else (1, 2, 4, 8, 16, 64,
                                                      128, 256)

    # The paper's grid is triangular: the iterative batch never exceeds
    # the decode batch (a bigger batch could never fill).
    cells: Dict[Tuple[int, int], float] = {}
    for iter_batch in iterative_batches:
        for decode_batch in decode_batches:
            if iter_batch > decode_batch:
                continue
            result = simulate_iterative_decode(
                decode_batch=decode_batch,
                iterative_batch=iter_batch,
                decode_len=DECODE_LEN,
                retrievals_per_seq=ITERATIVE_RETRIEVALS,
                step_latency=1.0,
                iteration_latency=0.0,
                seed=17,
            )
            cells[(iter_batch, decode_batch)] = result.normalized_latency

    text = format_heatmap(
        "Fig. 10b: normalized decoding latency (zero-latency retrieval)",
        "iter batch", "decode batch", iterative_batches, decode_batches,
        cells)
    worst = max(cells.values())
    diagonal = {b: cells[(b, b)] for b in iterative_batches
                if (b, b) in cells}
    notes = f"worst normalized latency {worst:.2f}x (paper: up to ~3.08x)"
    if 64 in diagonal:
        notes += f"; 64/64 cell = {diagonal[64]:.2f}x (paper: 2.77x)"
    return ExperimentOutput(
        exp_id="fig10",
        title="Decode idleness from batched iterative queries",
        text=text,
        data={"cells": cells, "worst": worst, "diagonal": diagonal},
        notes=notes)
