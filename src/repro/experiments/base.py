"""Shared plumbing for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.cluster import ClusterSpec


@dataclass
class ExperimentOutput:
    """Result of regenerating one paper artifact.

    Attributes:
        exp_id: Paper identifier ("fig5", "table4", ...).
        title: What the artifact shows.
        text: Printable rendering (tables / series) for bench logs.
        data: Structured results keyed by series/cell names, for tests
            and EXPERIMENTS.md.
        notes: Free-form remarks (e.g. measured-vs-paper ratios).
    """

    exp_id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = f"== {self.exp_id}: {self.title} =="
        parts = [header, self.text]
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


def default_cluster(cluster: Optional[ClusterSpec] = None) -> ClusterSpec:
    """The paper's serving environment: 32 servers x 4 XPU-C."""
    return cluster or ClusterSpec(num_servers=32)
