"""Fig. 18: resource-allocation sensitivity (Case II).

For both collocated and disaggregated placements, each chip-allocation
plan has its own Pareto frontier; the spread between the best and worst
allocation's maximum QPS/chip shows how much allocation matters. Paper
claims: up to 52.5x spread for collocated plans and 64.1x for
disaggregated plans.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.placement import fully_collocated, fully_disaggregated
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.tables import format_table
from repro.schema.paradigms import case_ii_long_context


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the allocation-sensitivity analysis."""
    cluster = default_cluster(cluster)
    schema = case_ii_long_context(1_000_000, "70B")
    pm = RAGPerfModel(schema, cluster)
    placements = {
        "collocated": fully_collocated(schema),
        "disaggregated": fully_disaggregated(schema),
    }

    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name, placement in placements.items():
        config = SearchConfig(max_batch=32 if fast else 128,
                              max_decode_batch=256 if fast else 1024,
                              placements=[placement],
                              collect_per_plan=True)
        result = search_schedules(pm, config)
        per_alloc_best = {}
        for plan in result.per_plan:
            best = max(point[1] for point in plan.points)
            per_alloc_best[plan.allocation] = best
        best = max(per_alloc_best.values())
        worst = min(per_alloc_best.values())
        spread = best / worst
        rows.append((name, len(per_alloc_best), best, worst, spread))
        data[name] = {"best": best, "worst": worst, "spread": spread,
                      "allocations": len(per_alloc_best)}

    text = format_table(
        ("placement", "allocations", "best QPS/chip", "worst QPS/chip",
         "spread"),
        rows, title="Fig. 18: resource allocation sensitivity (C-II)")
    notes = (f"QPS/chip spread: collocated "
             f"{data['collocated']['spread']:.1f}x (paper 52.5x), "
             f"disaggregated {data['disaggregated']['spread']:.1f}x "
             f"(paper 64.1x)")
    return ExperimentOutput(exp_id="fig18",
                            title="Resource allocation sensitivity",
                            text=text, data=data, notes=notes)
