"""Fig. 6: Case I sensitivity to model size and queries per retrieval.

(a)/(b): QPS/chip vs TTFT frontiers for the 8B and 70B models with 1-8
query vectors per retrieval plus a no-retrieval reference with the same
prefix length. (c)/(d): resource-normalized time breakdowns. Paper
claims: the 8B model is retrieval-bound (QPS roughly halves per query
doubling); the 70B model stays inference-bound until ~4 queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.llm_only import llm_only_search
from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.breakdown import time_breakdown
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.figures import format_series
from repro.reporting.tables import format_table
from repro.schema.paradigms import case_i_hyperscale
from repro.schema.stages import Stage


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the query-count sweep and breakdowns."""
    cluster = default_cluster(cluster)
    config = SearchConfig(max_batch=64 if fast else 128,
                          max_decode_batch=512 if fast else 1024)
    query_counts = (1, 4) if fast else (1, 2, 4, 8)
    models = ("8B", "70B")

    series: Dict[str, List[Tuple[float, float]]] = {}
    max_qps: Dict[str, float] = {}
    breakdowns: Dict[str, Dict[str, float]] = {}
    for label in models:
        for queries in query_counts:
            schema = case_i_hyperscale(label,
                                       queries_per_retrieval=queries)
            pm = RAGPerfModel(schema, cluster)
            result = search_schedules(pm, config)
            key = f"{label}/{queries}q"
            series[key] = [(p.ttft, p.qps_per_chip) for p in result.frontier]
            max_qps[key] = result.max_qps_per_chip.qps_per_chip
            breakdowns[key] = {str(stage): share for stage, share
                               in time_breakdown(pm).items()}
        # No-retrieval reference with the same 512-token prefix.
        reference = llm_only_search(label, cluster, config, prefix_len=512)
        key = f"{label}/no-retrieval"
        series[key] = [(p.ttft, p.qps_per_chip) for p in reference.frontier]
        max_qps[key] = reference.max_qps_per_chip.qps_per_chip

    text = format_series("Fig. 6a/b: QPS/chip vs TTFT by query count",
                         "TTFT (s)", "QPS/chip", series)
    rows = [(key, shares.get(str(Stage.RETRIEVAL), 0.0),
             shares.get(str(Stage.PREFIX), 0.0),
             shares.get(str(Stage.DECODE), 0.0))
            for key, shares in breakdowns.items()]
    text += "\n\n" + format_table(
        ("config", "retrieval", "prefix", "decode"), rows,
        title="Fig. 6c/d: time x resource breakdown")
    notes = (f"8B max QPS/chip 1q={max_qps['8B/1q']:.1f} vs "
             f"{query_counts[-1]}q={max_qps[f'8B/{query_counts[-1]}q']:.1f} "
             f"(retrieval-bound scaling)")
    return ExperimentOutput(
        exp_id="fig6",
        title="Hyperscale retrieval: query-count sweep + breakdown",
        text=text,
        data={"series": series, "max_qps": max_qps,
              "breakdowns": breakdowns},
        notes=notes)
