"""Table 4: RAGO versus baseline schedules in Case II.

Shows the placement, allocation and batching decisions behind the
max-QPS/chip and min-TTFT endpoints of RAGO and the LLM-extension
baseline for long-context RAG (1M-token context, 70B LLM). Paper claims:
RAGO's max-QPS schedule dedicates most chips to the encoder (64 of 96)
while the baseline's collocated encode+prefix arrangement strands decode
chips; min-TTFT schedules coincide.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.extension import extension_baseline_search
from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.assembly import PipelinePerf
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.tables import format_table
from repro.schema.paradigms import case_ii_long_context
from repro.schema.stages import Stage


def _row(name: str, perf: PipelinePerf) -> tuple:
    batches = perf.schedule.batches
    chips = {stage: group.num_xpus
             for group in perf.schedule.groups for stage in group.stages}
    return (
        name,
        perf.ttft,
        perf.qps_per_chip,
        batches.get(Stage.DATABASE_ENCODE, "-"),
        batches.get(Stage.RETRIEVAL, "-"),
        batches.get(Stage.PREFIX, "-"),
        batches.get(Stage.DECODE, "-"),
        chips.get(Stage.DATABASE_ENCODE, "-"),
        chips.get(Stage.PREFIX, "-"),
        chips.get(Stage.DECODE, "-"),
        perf.total_xpus,
    )


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the schedule-comparison table."""
    cluster = default_cluster(cluster)
    config = SearchConfig(max_batch=64 if fast else 128,
                          max_decode_batch=512 if fast else 1024)
    pm = RAGPerfModel(case_ii_long_context(1_000_000, "70B"), cluster)
    rago = search_schedules(pm, config)
    baseline = extension_baseline_search(pm,
                                         max_batch=config.max_batch,
                                         max_decode_batch=config.max_decode_batch)

    rows = [
        _row("RAGO (max QPS/chip)", rago.max_qps_per_chip),
        _row("RAGO (min TTFT)", rago.min_ttft),
        _row("Baseline (max QPS/chip)", baseline.max_qps_per_chip),
        _row("Baseline (min TTFT)", baseline.min_ttft),
    ]
    text = format_table(
        ("schedule", "TTFT (s)", "QPS/chip", "b.enc", "b.retr", "b.prefix",
         "b.decode", "xpu.enc", "xpu.prefix", "xpu.decode", "total"),
        rows, title="Table 4: RAGO vs baseline schedules (Case II, 1M ctx)")

    speedup = (rago.max_qps_per_chip.qps_per_chip
               / baseline.max_qps_per_chip.qps_per_chip)
    encode_chips = {stage: group.num_xpus
                    for group in rago.max_qps_per_chip.schedule.groups
                    for stage in group.stages}.get(Stage.DATABASE_ENCODE)
    data: Dict[str, object] = {
        "rago_max_qps_per_chip": rago.max_qps_per_chip.qps_per_chip,
        "rago_min_ttft": rago.min_ttft.ttft,
        "baseline_max_qps_per_chip":
            baseline.max_qps_per_chip.qps_per_chip,
        "baseline_min_ttft": baseline.min_ttft.ttft,
        "speedup": speedup,
        "rago_encode_chips": encode_chips,
        "rago_total_chips": rago.max_qps_per_chip.total_xpus,
    }
    notes = (f"RAGO/baseline max QPS-per-chip = {speedup:.2f}x "
             f"(paper: ~1.7x); RAGO gives {encode_chips} of "
             f"{rago.max_qps_per_chip.total_xpus} chips to the encoder "
             f"(paper: 64 of 96)")
    return ExperimentOutput(exp_id="table4",
                            title="RAGO vs baseline schedules in Case II",
                            text=text, data=data, notes=notes)
