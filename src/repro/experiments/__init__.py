"""Experiment runners: one module per paper table/figure.

Every module exposes ``run(fast=True, cluster=None) -> ExperimentOutput``.
``fast`` trims sweep densities so tests and CI stay quick; the full sweep
reproduces the paper's exact axes. The registry in
:mod:`repro.reporting.experiments` maps paper artifact ids to these
modules.
"""

from repro.experiments.base import ExperimentOutput, default_cluster

__all__ = ["ExperimentOutput", "default_cluster"]
