"""Fig. 16: how individual placement/allocation plans compose the global
Pareto frontier.

Each (placement, allocation) plan contributes its own small frontier of
batching policies; the global frontier is stitched from several distinct
plans. Paper claims: no single plan spans the frontier -- the
throughput-optimized end and the latency-optimized end come from
different placement/allocation choices (e.g. 1 chip vs 32 chips for the
query rewriter in C-IV).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.tables import format_table
from repro.schema.paradigms import case_ii_long_context, case_iv_rewriter_reranker


def _plan_signature(perf) -> Tuple:
    return tuple((group.stages, group.num_xpus)
                 for group in perf.schedule.groups)


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the Pareto-composition analysis."""
    cluster = default_cluster(cluster)
    config = SearchConfig(max_batch=32 if fast else 128,
                          max_decode_batch=256 if fast else 1024,
                          collect_per_plan=True)
    cases = {
        "C-II": case_ii_long_context(1_000_000, "70B"),
        "C-IV": case_iv_rewriter_reranker("70B"),
    }

    rows = []
    data: Dict[str, Dict[str, object]] = {}
    plots = []
    for name, schema in cases.items():
        result = search_schedules(RAGPerfModel(schema, cluster), config)
        contributing = {_plan_signature(perf) for perf in result.frontier}
        frontier_points: List[Tuple[float, float]] = [
            (p.ttft, p.qps_per_chip) for p in result.frontier]
        rows.append((name, len(result.frontier), len(contributing),
                     len(result.per_plan)))
        data[name] = {
            "frontier": frontier_points,
            "plans_on_frontier": len(contributing),
            "plans_evaluated": len(result.per_plan),
        }
        # Sample a few per-plan frontiers around the global one (the
        # paper's solid lines under the dashed global frontier).
        sample = sorted(result.per_plan,
                        key=lambda plan: -max(p[1] for p in plan.points))
        series = {}
        for index, plan in enumerate(sample[:3]):
            series[f"plan{index + 1}"] = list(plan.points)
        # Drawn last so the global frontier stays visible where plans
        # touch it.
        series["global"] = frontier_points
        from repro.reporting.ascii_plot import ascii_scatter

        plots.append(f"{name}:\n" + ascii_scatter(
            series, width=56, height=12, x_label="TTFT (s)",
            y_label="QPS/chip", log_x=True))

    text = format_table(
        ("case", "frontier points", "distinct plans on frontier",
         "plans evaluated"),
        rows, title="Fig. 16: Pareto composition across plans")
    text += "\n\n" + "\n\n".join(plots)
    multi = all(data[name]["plans_on_frontier"] > 1 for name in cases)
    notes = ("global frontier is stitched from multiple plans"
             if multi else "a single plan spans the frontier (unexpected)")
    return ExperimentOutput(exp_id="fig16",
                            title="Pareto composition across plans",
                            text=text, data=data, notes=notes)
