"""Fig. 8 (and §5.2 text): RAG for long-context sequence processing.

(a) QPS/chip vs TTFT for context lengths 100K/1M/10M plus a standard
512-token-prompt reference; (b) encode/retrieval/prefix/decode breakdown.
Also reproduces the §5.2 comparison against a long-context LLM that
ingests the whole document as a prompt (paper: 2852.6x TTFT and 6633.9x
QPS/chip at 1M tokens in RAG's favour).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.llm_only import llm_only_search, long_context_llm_perf
from repro.experiments.base import ExperimentOutput, default_cluster
from repro.hardware.cluster import ClusterSpec
from repro.models.catalog import LLAMA3_70B
from repro.pipeline.breakdown import time_breakdown
from repro.pipeline.stage_perf import RAGPerfModel
from repro.rago.search import SearchConfig, search_schedules
from repro.reporting.figures import format_series
from repro.reporting.tables import format_table
from repro.schema.paradigms import case_ii_long_context
from repro.schema.stages import Stage


def run(fast: bool = True,
        cluster: Optional[ClusterSpec] = None) -> ExperimentOutput:
    """Regenerate the long-context study."""
    cluster = default_cluster(cluster)
    config = SearchConfig(max_batch=64 if fast else 128,
                          max_decode_batch=512 if fast else 1024)
    contexts = (100_000, 1_000_000) if fast else (100_000, 1_000_000,
                                                  10_000_000)

    series: Dict[str, List[Tuple[float, float]]] = {}
    max_qps: Dict[str, float] = {}
    breakdowns: Dict[str, Dict[str, float]] = {}
    for context in contexts:
        schema = case_ii_long_context(context, "70B")
        pm = RAGPerfModel(schema, cluster)
        result = search_schedules(pm, config)
        key = f"ctx-{context}"
        series[key] = [(p.ttft, p.qps_per_chip) for p in result.frontier]
        max_qps[key] = result.max_qps_per_chip.qps_per_chip
        breakdowns[key] = {str(stage): share for stage, share
                           in time_breakdown(pm).items()}
    reference = llm_only_search("70B", cluster, config, prefix_len=512)
    series["no-long-context"] = [(p.ttft, p.qps_per_chip)
                                 for p in reference.frontier]
    max_qps["no-long-context"] = reference.max_qps_per_chip.qps_per_chip

    # §5.2: RAG vs long-context LLM at 1M tokens.
    rag_1m = search_schedules(
        RAGPerfModel(case_ii_long_context(1_000_000, "70B"), cluster),
        config)
    lc_llm = long_context_llm_perf(LLAMA3_70B, 1_000_000, 64, cluster.xpu)
    ttft_speedup = lc_llm.ttft / rag_1m.min_ttft.ttft
    qps_speedup = (rag_1m.max_qps_per_chip.qps_per_chip
                   / lc_llm.qps_per_chip) if lc_llm.qps_per_chip else \
        float("inf")

    text = format_series("Fig. 8a: long-context QPS/chip vs TTFT (70B)",
                         "TTFT (s)", "QPS/chip", series)
    rows = [(key,
             shares.get(str(Stage.DATABASE_ENCODE), 0.0),
             shares.get(str(Stage.RETRIEVAL), 0.0),
             shares.get(str(Stage.PREFIX), 0.0),
             shares.get(str(Stage.DECODE), 0.0))
            for key, shares in breakdowns.items()]
    text += "\n\n" + format_table(
        ("context", "encode", "retrieval", "prefix", "decode"), rows,
        title="Fig. 8b: time x resource breakdown")
    notes = (f"RAG vs long-context LLM at 1M tokens: TTFT "
             f"{ttft_speedup:.0f}x faster, QPS/chip {qps_speedup:.0f}x "
             f"higher (paper: 2852.6x / 6633.9x)")
    return ExperimentOutput(
        exp_id="fig8",
        title="Long-context performance and breakdown",
        text=text,
        data={"series": series, "max_qps": max_qps,
              "breakdowns": breakdowns,
              "ttft_speedup_vs_long_context_llm": ttft_speedup,
              "qps_speedup_vs_long_context_llm": qps_speedup},
        notes=notes)
