"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from infeasible
schedules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class CapacityError(ReproError):
    """A placement/allocation does not fit in the available hardware.

    Raised, for example, when a model's weights exceed the aggregate HBM of
    the accelerators assigned to it, or when a database shard does not fit
    in a CPU server's host memory.
    """


class ScheduleError(ReproError):
    """No feasible schedule exists for the given constraints."""


class CalibrationError(ReproError):
    """A calibration run produced unusable measurements."""


class DistribError(ReproError):
    """A distributed sweep failed at the transport layer.

    Raised by the :mod:`repro.distrib` backends on protocol violations
    or an unrecoverable executor state (every worker dead with cells
    outstanding) -- never for a cell whose *search* failed; those are
    recorded as error cells in the result table instead.
    """
