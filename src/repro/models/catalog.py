"""Catalog of the concrete models the paper evaluates (§4, Table 3).

* Llama-3 herd: 1B, 8B, 70B, 405B (generative LLMs; also the 8B query
  rewriter).
* A 120M sentence-transformer-style encoder (database encoder and
  reranker).

Architectural shapes follow the published Llama-3 configurations; the
names used in the paper ("RAG 8B", "120M encoder") map 1:1 onto these.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.models.transformer import TransformerConfig

LLAMA3_1B = TransformerConfig(
    name="llama3-1b",
    num_layers=16,
    d_model=2048,
    num_heads=32,
    num_kv_heads=8,
    d_ff=8192,
)

LLAMA3_8B = TransformerConfig(
    name="llama3-8b",
    num_layers=32,
    d_model=4096,
    num_heads=32,
    num_kv_heads=8,
    d_ff=14336,
)

LLAMA3_70B = TransformerConfig(
    name="llama3-70b",
    num_layers=80,
    d_model=8192,
    num_heads=64,
    num_kv_heads=8,
    d_ff=28672,
)

LLAMA3_405B = TransformerConfig(
    name="llama3-405b",
    num_layers=126,
    d_model=16384,
    num_heads=128,
    num_kv_heads=8,
    d_ff=53248,
)

#: BERT-base-like bidirectional encoder used as the database encoder.
ENCODER_120M = TransformerConfig(
    name="encoder-120m",
    num_layers=12,
    d_model=768,
    num_heads=12,
    num_kv_heads=12,
    d_ff=3072,
    vocab_size=30_522,
    gated_mlp=False,
    is_decoder=False,
)

#: The reranker shares the encoder architecture (§5.4 uses a 120M model).
RERANKER_120M = ENCODER_120M

#: The query rewriter is a generative 8B model (§5.4).
REWRITER_8B = LLAMA3_8B

MODEL_CATALOG: Dict[str, TransformerConfig] = {
    "1B": LLAMA3_1B,
    "8B": LLAMA3_8B,
    "70B": LLAMA3_70B,
    "405B": LLAMA3_405B,
    "120M": ENCODER_120M,
}


def model_by_params(label: str) -> TransformerConfig:
    """Look up a catalog model by its parameter-count label.

    Args:
        label: One of ``"120M"``, ``"1B"``, ``"8B"``, ``"70B"``, ``"405B"``
            (case-insensitive).

    Raises:
        ConfigError: for unknown labels.
    """
    key = label.strip().upper()
    if key not in MODEL_CATALOG:
        known = ", ".join(sorted(MODEL_CATALOG))
        raise ConfigError(f"unknown model label {label!r}; known: {known}")
    return MODEL_CATALOG[key]
