"""Operator-level expansion of transformer inference.

The paper's XPU simulator "abstracts inference as a sequence of operators"
(§4a, Fig. 4): total latency is the sum of per-operator roofline times plus
communication. This module produces that operator sequence for the two LLM
phases:

* :func:`prefill_operators` -- process a whole prompt at once
  (compute-intensive).
* :func:`decode_step_operators` -- generate one token for every sequence in
  the batch (memory-intensive: full weight read plus KV-cache read).

Each operator records FLOPs, weight bytes and activation/KV bytes
separately so the parallelism layer can shard them correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.models.transformer import TransformerConfig


@dataclass(frozen=True)
class Operator:
    """One fused operator in the inference graph.

    Attributes:
        name: Operator kind (``"qkv_proj"``, ``"attention"``, ...).
        flops: Floating-point operations performed.
        weight_bytes: Bytes of model weights streamed from HBM. Weight
            traffic is independent of batch size (read once per
            invocation) and is sharded by tensor parallelism.
        io_bytes: Bytes of activations and KV-cache traffic; scales with
            batch size.
        count: How many times the operator repeats (usually the layer
            count); costs are per single invocation.
    """

    name: str
    flops: float
    weight_bytes: float
    io_bytes: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.flops < 0 or self.weight_bytes < 0 or self.io_bytes < 0:
            raise ConfigError(f"{self.name}: demands must be non-negative")
        if self.count <= 0:
            raise ConfigError(f"{self.name}: count must be positive")

    @property
    def total_bytes(self) -> float:
        """All HBM traffic for one invocation."""
        return self.weight_bytes + self.io_bytes


def _check_positive(**values: float) -> None:
    for key, value in values.items():
        if value <= 0:
            raise ConfigError(f"{key} must be positive, got {value}")


def prefill_operators(model: TransformerConfig, batch: int,
                      seq_len: int) -> List[Operator]:
    """Operator list for prefilling ``batch`` prompts of ``seq_len`` tokens.

    Attention cost uses the average causal context ``seq_len / 2``.
    Encoders (bidirectional) attend over the full sequence instead.
    """
    _check_positive(batch=batch, seq_len=seq_len)
    tokens = float(batch * seq_len)
    d = model.d_model
    kv = model.kv_dim
    wb = model.weight_bytes_per_param
    ab = model.activation_bytes
    # Causal attention sees seq_len/2 context on average; bidirectional
    # encoders see the full sequence.
    context = seq_len if not model.is_decoder else seq_len / 2.0

    qkv = Operator(
        name="qkv_proj",
        flops=2.0 * tokens * d * (d + 2 * kv),
        weight_bytes=(d * d + 2 * d * kv) * wb,
        io_bytes=tokens * (2 * d + 2 * kv) * ab,
        count=model.num_layers,
    )
    attention = Operator(
        name="attention",
        flops=4.0 * tokens * context * d,
        weight_bytes=0.0,
        io_bytes=tokens * (3 * d) * ab,
        count=model.num_layers,
    )
    out_proj = Operator(
        name="out_proj",
        flops=2.0 * tokens * d * d,
        weight_bytes=d * d * wb,
        io_bytes=tokens * 2 * d * ab,
        count=model.num_layers,
    )
    mlp_matrices = 3 if model.gated_mlp else 2
    mlp = Operator(
        name="mlp",
        flops=2.0 * tokens * d * model.d_ff * mlp_matrices,
        weight_bytes=mlp_matrices * d * model.d_ff * wb,
        io_bytes=tokens * (2 * d + model.d_ff) * ab,
        count=model.num_layers,
    )
    operators = [qkv, attention, out_proj, mlp]
    if model.is_decoder:
        # Project logits for the final position of each sequence only.
        operators.append(Operator(
            name="unembed",
            flops=2.0 * batch * d * model.vocab_size,
            weight_bytes=model.vocab_size * d * wb,
            io_bytes=batch * (d + model.vocab_size) * ab,
        ))
    return operators


def decode_step_operators(model: TransformerConfig, batch: int,
                          context_len: float,
                          kv_bytes_per_element: float = 1.0) -> List[Operator]:
    """Operator list for one decode step over a batch of sequences.

    Args:
        model: The generative transformer.
        batch: Sequences decoded concurrently (continuous batching batch).
        context_len: Attention context per sequence at this step (prompt
            plus tokens generated so far; callers typically pass the mean).
        kv_bytes_per_element: KV-cache precision in bytes.

    Raises:
        ConfigError: for encoders (no decode phase) or bad sizes.
    """
    if not model.is_decoder:
        raise ConfigError(f"{model.name} is an encoder; it has no decode phase")
    _check_positive(batch=batch)
    if context_len < 0:
        raise ConfigError("context_len must be non-negative")
    d = model.d_model
    kv = model.kv_dim
    wb = model.weight_bytes_per_param
    ab = model.activation_bytes

    qkv = Operator(
        name="qkv_proj",
        flops=2.0 * batch * d * (d + 2 * kv),
        weight_bytes=(d * d + 2 * d * kv) * wb,
        io_bytes=batch * (2 * d + 2 * kv) * ab,
        count=model.num_layers,
    )
    # Each new token attends over the whole cached context: the dominant
    # traffic is reading the KV cache for every sequence in the batch.
    kv_cache_bytes = batch * context_len * 2 * kv * kv_bytes_per_element
    attention = Operator(
        name="attention",
        flops=4.0 * batch * context_len * d,
        weight_bytes=0.0,
        io_bytes=kv_cache_bytes + batch * 3 * d * ab,
        count=model.num_layers,
    )
    out_proj = Operator(
        name="out_proj",
        flops=2.0 * batch * d * d,
        weight_bytes=d * d * wb,
        io_bytes=batch * 2 * d * ab,
        count=model.num_layers,
    )
    mlp_matrices = 3 if model.gated_mlp else 2
    mlp = Operator(
        name="mlp",
        flops=2.0 * batch * d * model.d_ff * mlp_matrices,
        weight_bytes=mlp_matrices * d * model.d_ff * wb,
        io_bytes=batch * (2 * d + model.d_ff) * ab,
        count=model.num_layers,
    )
    unembed = Operator(
        name="unembed",
        flops=2.0 * batch * d * model.vocab_size,
        weight_bytes=model.vocab_size * d * wb,
        io_bytes=batch * (d + model.vocab_size) * ab,
    )
    return [qkv, attention, out_proj, mlp, unembed]
