"""Dense transformer configuration and derived workload quantities.

Only performance-relevant attributes are captured (the paper's RAGSchema
philosophy): layer count, widths, head structure and weight precision.
From these we derive parameter counts, FLOPs per token, KV-cache bytes and
weight bytes -- the inputs to the roofline cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture of a dense decoder-only (or encoder) transformer.

    Attributes:
        name: Human-readable identifier (e.g. ``"llama3-8b"``).
        num_layers: Number of transformer blocks.
        d_model: Residual stream width.
        num_heads: Query heads.
        num_kv_heads: Key/value heads (grouped-query attention when fewer
            than ``num_heads``).
        d_ff: MLP hidden width (for gated MLPs this is the up/gate width).
        vocab_size: Vocabulary size (embedding + unembedding matrices).
        gated_mlp: Whether the MLP uses a gated (SwiGLU-style) structure
            with three projection matrices instead of two.
        weight_bytes_per_param: Bytes per stored weight (1 for the paper's
            int8 quantization assumption).
        activation_bytes: Bytes per activation element moved through HBM.
        is_decoder: False for bidirectional encoders (no KV cache, no
            autoregressive decode phase).
    """

    name: str
    num_layers: int
    d_model: int
    num_heads: int
    num_kv_heads: int
    d_ff: int
    vocab_size: int = 128_256
    gated_mlp: bool = True
    weight_bytes_per_param: float = 1.0
    activation_bytes: float = 2.0
    is_decoder: bool = True

    def __post_init__(self) -> None:
        if min(self.num_layers, self.d_model, self.num_heads,
               self.num_kv_heads, self.d_ff, self.vocab_size) <= 0:
            raise ConfigError(f"{self.name}: all dimensions must be positive")
        if self.d_model % self.num_heads != 0:
            raise ConfigError(
                f"{self.name}: d_model ({self.d_model}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ConfigError(
                f"{self.name}: num_heads must be a multiple of num_kv_heads"
            )
        if self.weight_bytes_per_param <= 0 or self.activation_bytes <= 0:
            raise ConfigError(f"{self.name}: byte sizes must be positive")

    @property
    def head_dim(self) -> int:
        """Per-head width."""
        return self.d_model // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Total key (or value) width across KV heads."""
        return self.num_kv_heads * self.head_dim

    @property
    def attention_params_per_layer(self) -> int:
        """Weights in Q, K, V and output projections of one layer."""
        q_and_out = 2 * self.d_model * self.d_model
        k_and_v = 2 * self.d_model * self.kv_dim
        return q_and_out + k_and_v

    @property
    def mlp_params_per_layer(self) -> int:
        """Weights in the MLP projections of one layer."""
        matrices = 3 if self.gated_mlp else 2
        return matrices * self.d_model * self.d_ff

    @property
    def params_per_layer(self) -> int:
        """All weights in one transformer block."""
        return self.attention_params_per_layer + self.mlp_params_per_layer

    @property
    def embedding_params(self) -> int:
        """Weights in the (tied) token embedding / unembedding."""
        return self.vocab_size * self.d_model

    @property
    def num_params(self) -> int:
        """Total parameter count."""
        return self.num_layers * self.params_per_layer + self.embedding_params

    @property
    def weight_bytes(self) -> float:
        """Bytes of storage for all weights at the configured precision."""
        return self.num_params * self.weight_bytes_per_param

    def kv_cache_bytes_per_token(self, kv_bytes_per_element: float = 1.0) -> float:
        """KV-cache bytes added per token of context, across all layers.

        The paper assumes 8-bit quantization; key and value each store
        ``kv_dim`` elements per layer.
        """
        if not self.is_decoder:
            return 0.0
        return 2.0 * self.num_layers * self.kv_dim * kv_bytes_per_element

    def flops_per_token(self, context_len: float) -> float:
        """FLOPs to process one token at a given attention context length.

        Dense matmul work is ``2 * params`` per token (multiply+add per
        weight); attention score and value aggregation add
        ``4 * context_len * d_model`` per layer using query heads (GQA
        shares KV but every query head still attends over the context).
        """
        if context_len < 0:
            raise ConfigError("context_len must be non-negative")
        dense = 2.0 * self.num_params
        attention = 4.0 * self.num_layers * context_len * self.d_model
        return dense + attention

    def prefill_flops(self, seq_len: int) -> float:
        """Total FLOPs to prefill a sequence of ``seq_len`` tokens.

        The attention term integrates the growing causal context, giving
        an average context of ``seq_len / 2`` per token.
        """
        if seq_len <= 0:
            raise ConfigError("seq_len must be positive")
        dense = 2.0 * self.num_params * seq_len
        attention = 4.0 * self.num_layers * self.d_model * (seq_len**2) / 2.0
        return dense + attention
