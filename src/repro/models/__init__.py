"""Transformer model configurations and the operator-level workload graph.

The inference cost model does not run any ML; it expands a
:class:`TransformerConfig` into a sequence of operators (QKV projection,
attention, MLP, ...) whose FLOP and byte demands feed the roofline model,
exactly as the paper's XPU simulator abstracts inference (§4a, Fig. 4).
"""

from repro.models.transformer import TransformerConfig
from repro.models.catalog import (
    ENCODER_120M,
    LLAMA3_1B,
    LLAMA3_8B,
    LLAMA3_70B,
    LLAMA3_405B,
    MODEL_CATALOG,
    RERANKER_120M,
    REWRITER_8B,
    model_by_params,
)
from repro.models.operators import Operator, decode_step_operators, prefill_operators

__all__ = [
    "TransformerConfig",
    "LLAMA3_1B",
    "LLAMA3_8B",
    "LLAMA3_70B",
    "LLAMA3_405B",
    "ENCODER_120M",
    "REWRITER_8B",
    "RERANKER_120M",
    "MODEL_CATALOG",
    "model_by_params",
    "Operator",
    "prefill_operators",
    "decode_step_operators",
]
