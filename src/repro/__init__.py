"""repro: a reproduction of RAGO (ISCA 2025).

RAGO -- Retrieval-Augmented Generation Optimizer -- is a systematic
performance-optimization framework for RAG serving. This library
implements the paper end to end:

* :mod:`repro.schema` -- RAGSchema, the structured workload abstraction,
  with presets for the paper's four case-study paradigms.
* :mod:`repro.hardware`, :mod:`repro.models`, :mod:`repro.inference`,
  :mod:`repro.retrieval` -- the calibrated analytical cost models
  (operator-roofline XPU inference; ScaNN-style scan-roofline retrieval)
  plus a functional numpy IVF-PQ engine.
* :mod:`repro.pipeline` -- end-to-end TTFT/TPOT/QPS assembly, breakdowns,
  the iterative-retrieval discrete-event model and micro-batching.
* :mod:`repro.rago` -- the scheduling-policy search (placement x
  allocation x batching -> Pareto frontier).
* :mod:`repro.baselines`, :mod:`repro.experiments` -- the paper's
  comparison systems and one runner per evaluation table/figure.

Quickstart::

    from repro import RAGO, ClusterSpec, case_iv_rewriter_reranker

    rago = RAGO(case_iv_rewriter_reranker("70B"), ClusterSpec())
    result = rago.optimize()
    print(result.max_qps_per_chip.schedule.describe())
"""

from repro.errors import (
    CalibrationError,
    CapacityError,
    ConfigError,
    ReproError,
    ScheduleError,
)
from repro.hardware import (
    XPU_A,
    XPU_B,
    XPU_C,
    ClusterSpec,
    CPUServerSpec,
    EPYC_MILAN,
    XPUSpec,
)
from repro.models import (
    ENCODER_120M,
    LLAMA3_1B,
    LLAMA3_8B,
    LLAMA3_70B,
    LLAMA3_405B,
    TransformerConfig,
    model_by_params,
)
from repro.retrieval import (
    BruteForceIndex,
    DatabaseConfig,
    IVFPQIndex,
    ProductQuantizer,
    RetrievalSimulator,
)
from repro.inference import InferenceSimulator
from repro.schema import (
    RAGSchema,
    Stage,
    case_i_hyperscale,
    case_ii_long_context,
    case_iii_iterative,
    case_iv_rewriter_reranker,
    llm_only,
)
from repro.workloads import SequenceProfile
from repro.pipeline import (
    PipelinePerf,
    PlacementGroup,
    RAGPerfModel,
    Schedule,
    assemble,
    simulate_iterative_decode,
    time_breakdown,
)
from repro.rago import (
    RAGO,
    PriceBook,
    SearchConfig,
    SearchResult,
    ServiceObjective,
    estimate_cost,
    pareto_front,
)
from repro.rago.provisioning import ProvisioningResult, provision
from repro.hardware.power import PowerProfile, estimate_energy
from repro.sim import ServingSimulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigError",
    "CapacityError",
    "ScheduleError",
    "CalibrationError",
    # hardware
    "XPUSpec",
    "XPU_A",
    "XPU_B",
    "XPU_C",
    "CPUServerSpec",
    "EPYC_MILAN",
    "ClusterSpec",
    # models
    "TransformerConfig",
    "LLAMA3_1B",
    "LLAMA3_8B",
    "LLAMA3_70B",
    "LLAMA3_405B",
    "ENCODER_120M",
    "model_by_params",
    # retrieval
    "ProductQuantizer",
    "IVFPQIndex",
    "BruteForceIndex",
    "DatabaseConfig",
    "RetrievalSimulator",
    # inference
    "InferenceSimulator",
    # schema
    "RAGSchema",
    "Stage",
    "SequenceProfile",
    "case_i_hyperscale",
    "case_ii_long_context",
    "case_iii_iterative",
    "case_iv_rewriter_reranker",
    "llm_only",
    # pipeline
    "RAGPerfModel",
    "Schedule",
    "PlacementGroup",
    "PipelinePerf",
    "assemble",
    "time_breakdown",
    "simulate_iterative_decode",
    # rago
    "RAGO",
    "SearchConfig",
    "SearchResult",
    "pareto_front",
    "ServiceObjective",
    "PriceBook",
    "estimate_cost",
    "provision",
    "ProvisioningResult",
    # extensions
    "PowerProfile",
    "estimate_energy",
    "ServingSimulator",
]
