"""repro: a reproduction of RAGO (ISCA 2025).

RAGO -- Retrieval-Augmented Generation Optimizer -- is a systematic
performance-optimization framework for RAG serving. This library
implements the paper end to end:

* :mod:`repro.schema` -- RAGSchema, the structured workload abstraction,
  with presets for the paper's four case-study paradigms.
* :mod:`repro.hardware`, :mod:`repro.models`, :mod:`repro.inference`,
  :mod:`repro.retrieval` -- the calibrated analytical cost models
  (operator-roofline XPU inference; ScaNN-style scan-roofline retrieval)
  plus a functional numpy IVF-PQ engine.
* :mod:`repro.pipeline` -- end-to-end TTFT/TPOT/QPS assembly, breakdowns,
  the iterative-retrieval discrete-event model and micro-batching.
* :mod:`repro.rago` -- the scheduling-policy search (placement x
  allocation x batching -> Pareto frontier).
* :mod:`repro.baselines`, :mod:`repro.experiments` -- the paper's
  comparison systems and one runner per evaluation table/figure.
* :mod:`repro.config` -- versioned JSON serialization of every
  optimizer artifact (schemas, clusters, schedules, found frontiers).

Quickstart -- declare a pipeline, open a session, constrain, solve::

    from repro import ClusterSpec, OptimizerSession
    from repro.schema import pipeline
    from repro.schema.paradigms import HYPERSCALE_DATABASE

    schema = (pipeline("my-rag")
              .rewrite("8B")
              .retrieve(HYPERSCALE_DATABASE, neighbors=5)
              .rerank("120M")
              .generate("70B")
              .build())
    session = (OptimizerSession(schema, ClusterSpec())
               .with_constraint(max_ttft=0.2))
    print(session.best().schedule.describe())

The paper's presets remain one call away (``case_i_hyperscale("8B")``,
...), the classic facade still works (``RAGO(schema,
cluster).optimize()``), and any schema/result round-trips through
:mod:`repro.config` for reproducible experiment files.
"""

from repro.errors import (
    CalibrationError,
    CapacityError,
    ConfigError,
    ReproError,
    ScheduleError,
)
from repro.hardware import (
    XPU_A,
    XPU_B,
    XPU_C,
    ClusterSpec,
    CPUServerSpec,
    EPYC_MILAN,
    XPUSpec,
)
from repro.models import (
    ENCODER_120M,
    LLAMA3_1B,
    LLAMA3_8B,
    LLAMA3_70B,
    LLAMA3_405B,
    TransformerConfig,
    model_by_params,
)
from repro.retrieval import (
    BruteForceIndex,
    DatabaseConfig,
    IVFPQIndex,
    ProductQuantizer,
    RetrievalSimulator,
)
from repro.inference import InferenceSimulator
# NOTE: the builder entry point `pipeline()` is exported from
# repro.schema only -- binding it here would shadow the repro.pipeline
# submodule attribute on this package.
from repro.schema import (
    PipelineBuilder,
    RAGSchema,
    Stage,
    case_i_hyperscale,
    case_ii_long_context,
    case_iii_iterative,
    case_iv_rewriter_reranker,
    llm_only,
    register_stage_type,
)
from repro.workloads import (
    RequestTrace,
    SequenceProfile,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
    scenario_trace,
)
from repro.pipeline import (
    PipelinePerf,
    PlacementGroup,
    RAGPerfModel,
    Schedule,
    assemble,
    simulate_iterative_decode,
    time_breakdown,
)
from repro.rago import (
    RAGO,
    OptimizerSession,
    PriceBook,
    SearchConfig,
    SearchResult,
    ServiceObjective,
    SweepCell,
    SweepResult,
    estimate_cost,
    pareto_front,
)
from repro import config
from repro.config import OptimizationConfig
from repro.rago.provisioning import ProvisioningResult, provision
from repro.hardware.power import PowerProfile, estimate_energy
from repro.sim import (
    FleetEngine,
    LiveSnapshot,
    RoutingPolicy,
    ServingEngine,
    ServingReport,
    ServingSimulator,
    SLOTarget,
)
from repro.serve import LiveServer, ServeConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigError",
    "CapacityError",
    "ScheduleError",
    "CalibrationError",
    # hardware
    "XPUSpec",
    "XPU_A",
    "XPU_B",
    "XPU_C",
    "CPUServerSpec",
    "EPYC_MILAN",
    "ClusterSpec",
    # models
    "TransformerConfig",
    "LLAMA3_1B",
    "LLAMA3_8B",
    "LLAMA3_70B",
    "LLAMA3_405B",
    "ENCODER_120M",
    "model_by_params",
    # retrieval
    "ProductQuantizer",
    "IVFPQIndex",
    "BruteForceIndex",
    "DatabaseConfig",
    "RetrievalSimulator",
    # inference
    "InferenceSimulator",
    # schema
    "RAGSchema",
    "PipelineBuilder",
    "register_stage_type",
    "Stage",
    "SequenceProfile",
    # workload traces
    "RequestTrace",
    "poisson_trace",
    "bursty_trace",
    "diurnal_trace",
    "scenario_trace",
    "case_i_hyperscale",
    "case_ii_long_context",
    "case_iii_iterative",
    "case_iv_rewriter_reranker",
    "llm_only",
    # pipeline
    "RAGPerfModel",
    "Schedule",
    "PlacementGroup",
    "PipelinePerf",
    "assemble",
    "time_breakdown",
    "simulate_iterative_decode",
    # rago
    "RAGO",
    "OptimizerSession",
    "SweepCell",
    "SweepResult",
    "SearchConfig",
    "SearchResult",
    # config
    "config",
    "OptimizationConfig",
    "pareto_front",
    "ServiceObjective",
    "PriceBook",
    "estimate_cost",
    "provision",
    "ProvisioningResult",
    # extensions
    "PowerProfile",
    "estimate_energy",
    "ServingSimulator",
    "ServingEngine",
    "FleetEngine",
    "RoutingPolicy",
    "ServingReport",
    "SLOTarget",
    "LiveSnapshot",
    "LiveServer",
    "ServeConfig",
]
