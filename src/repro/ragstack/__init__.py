"""A functional (non-ML) RAG stack over the vector-search engine.

The performance models in :mod:`repro.pipeline` answer "how fast"; this
package answers "does the pipeline *work*": documents are chunked,
embedded with a deterministic hashing embedder, indexed with the
functional IVF-PQ engine, and served through the full RAG pipeline shape
of Fig. 3 -- query rewriting, retrieval, reranking and (extractive)
generation. Every component is deterministic and dependency-free, so
end-to-end behaviour is testable down to exact answers.

This is the reproduction's stand-in for the paper's model components:
the *schema* (which stages exist, what they consume and produce) matches
the paper; the models themselves are replaced by deterministic
equivalents per the substitution policy in DESIGN.md.
"""

from repro.ragstack.documents import Chunk, Document, DocumentStore, chunk_text
from repro.ragstack.embedding import HashingEmbedder
from repro.ragstack.retriever import RetrievedChunk, VectorRetriever
from repro.ragstack.reranker import ExactReranker
from repro.ragstack.rewriter import RuleBasedRewriter
from repro.ragstack.generator import Answer, ExtractiveGenerator
from repro.ragstack.pipeline import RAGPipeline

__all__ = [
    "Document",
    "Chunk",
    "DocumentStore",
    "chunk_text",
    "HashingEmbedder",
    "VectorRetriever",
    "RetrievedChunk",
    "ExactReranker",
    "RuleBasedRewriter",
    "ExtractiveGenerator",
    "Answer",
    "RAGPipeline",
]
