"""The end-to-end functional RAG pipeline (Fig. 3 shape).

Composes rewriter -> retrieval -> reranker -> generator over a document
store, mirroring the stage structure that RAGSchema describes and RAGO
schedules. Optional stages can be disabled, matching the four paradigm
presets (a Case-I pipeline has neither rewriter nor reranker; Case IV
has both).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError
from repro.ragstack.documents import Document, DocumentStore
from repro.ragstack.embedding import HashingEmbedder
from repro.ragstack.generator import Answer, ExtractiveGenerator
from repro.ragstack.reranker import ExactReranker
from repro.ragstack.retriever import RetrievedChunk, VectorRetriever
from repro.ragstack.rewriter import RuleBasedRewriter


class RAGPipeline:
    """A working retrieval-augmented answering pipeline.

    Args:
        chunk_tokens: Tokens per database chunk.
        use_rewriter: Include the query-rewriting stage (Case IV).
        use_reranker: Include the reranking stage (Case IV).
        use_ann: Index with IVF-PQ instead of brute force.
        retrieve_k: Candidates fetched per retrieval query (the paper's
            16 nearest passages for reranking).
        final_passages: Passages handed to the generator (the paper's
            top five).
    """

    def __init__(self, chunk_tokens: int = 128, use_rewriter: bool = False,
                 use_reranker: bool = False, use_ann: bool = True,
                 retrieve_k: int = 16, final_passages: int = 5,
                 embedder: Optional[HashingEmbedder] = None) -> None:
        if retrieve_k <= 0 or final_passages <= 0:
            raise ConfigError("retrieve_k and final_passages must be positive")
        self._store = DocumentStore(chunk_tokens=chunk_tokens)
        self._embedder = embedder or HashingEmbedder()
        self._retriever = VectorRetriever(self._store, self._embedder,
                                          use_ann=use_ann)
        self._rewriter = RuleBasedRewriter() if use_rewriter else None
        self._reranker = ExactReranker(self._embedder) if use_reranker \
            else None
        self._generator = ExtractiveGenerator()
        self._retrieve_k = retrieve_k
        self._final_passages = final_passages
        self._built = False

    @property
    def store(self) -> DocumentStore:
        """The underlying chunk store."""
        return self._store

    @property
    def num_chunks(self) -> int:
        """Database size in chunks (vectors)."""
        return self._store.num_chunks

    def add_documents(self, documents: List[Document]) -> None:
        """Ingest documents; invalidates any previously built index."""
        for document in documents:
            self._store.add(document)
        self._built = False

    def build(self) -> "RAGPipeline":
        """Embed and index the corpus."""
        self._retriever.build()
        self._built = True
        return self

    def retrieve(self, question: str) -> List[RetrievedChunk]:
        """Run rewrite + retrieval (+ rerank) and return the passages.

        Raises:
            ConfigError: when the index has not been built.
        """
        if not self._built:
            raise ConfigError("call build() after adding documents")
        queries = [question]
        if self._rewriter is not None:
            queries = self._rewriter.rewrite(question)
        candidates: List[RetrievedChunk] = []
        for query in queries:
            candidates.extend(self._retriever.retrieve(query,
                                                       k=self._retrieve_k))
        if self._reranker is not None:
            return self._reranker.rerank(question, candidates,
                                         top_n=self._final_passages)
        # Without a reranker, keep the closest unique chunks.
        candidates.sort(key=lambda hit: (hit.score, hit.chunk.chunk_id))
        seen = set()
        unique = []
        for hit in candidates:
            if hit.chunk.chunk_id in seen:
                continue
            seen.add(hit.chunk.chunk_id)
            unique.append(hit)
        return unique[:self._final_passages]

    def answer(self, question: str) -> Answer:
        """Full pipeline: question in, grounded answer out."""
        passages = self.retrieve(question)
        return self._generator.generate(question, passages)
