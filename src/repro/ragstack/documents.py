"""Documents, chunking and the chunk store.

The paper's databases hold passage chunks of ~100-128 tokens with small
overlaps (§3.1, §5.2). Tokens here are whitespace words -- adequate for
chunk-accounting and retrieval semantics without a tokenizer dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigError


@dataclass(frozen=True)
class Document:
    """A source document.

    Attributes:
        doc_id: Unique identifier.
        text: Full document text.
        metadata: Free-form attributes (title, source URL, ...).
    """

    doc_id: str
    text: str
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise ConfigError("doc_id must be non-empty")
        if not self.text.strip():
            raise ConfigError(f"document {self.doc_id} has no text")

    @property
    def num_tokens(self) -> int:
        """Whitespace-token count."""
        return len(self.text.split())


@dataclass(frozen=True)
class Chunk:
    """One passage chunk of a document.

    Attributes:
        chunk_id: Global index within the store.
        doc_id: Owning document.
        text: Chunk text.
        start_token: Offset of the chunk's first token in the document.
    """

    chunk_id: int
    doc_id: str
    text: str
    start_token: int

    @property
    def num_tokens(self) -> int:
        """Whitespace-token count."""
        return len(self.text.split())


def chunk_text(text: str, chunk_tokens: int = 128,
               overlap_tokens: int = 16) -> List[str]:
    """Split text into overlapping token windows.

    Args:
        text: Source text.
        chunk_tokens: Tokens per chunk (the paper uses 100-128).
        overlap_tokens: Tokens shared between consecutive chunks.

    Raises:
        ConfigError: when the overlap is not smaller than the chunk.
    """
    if chunk_tokens <= 0:
        raise ConfigError("chunk_tokens must be positive")
    if not 0 <= overlap_tokens < chunk_tokens:
        raise ConfigError("overlap must be in [0, chunk_tokens)")
    tokens = text.split()
    if not tokens:
        return []
    stride = chunk_tokens - overlap_tokens
    chunks = []
    for start in range(0, len(tokens), stride):
        window = tokens[start:start + chunk_tokens]
        chunks.append(" ".join(window))
        if start + chunk_tokens >= len(tokens):
            break
    return chunks


class DocumentStore:
    """Chunked corpus with global chunk ids.

    Args:
        chunk_tokens: Tokens per chunk.
        overlap_tokens: Tokens shared between consecutive chunks.
    """

    def __init__(self, chunk_tokens: int = 128,
                 overlap_tokens: int = 16) -> None:
        self._chunk_tokens = chunk_tokens
        self._overlap = overlap_tokens
        self._documents: Dict[str, Document] = {}
        self._chunks: List[Chunk] = []
        # Validate the chunking parameters eagerly.
        chunk_text("probe", chunk_tokens, overlap_tokens)

    @property
    def num_documents(self) -> int:
        """Documents added so far."""
        return len(self._documents)

    @property
    def num_chunks(self) -> int:
        """Chunks across all documents (the database vector count)."""
        return len(self._chunks)

    @property
    def chunks(self) -> List[Chunk]:
        """All chunks in insertion order."""
        return list(self._chunks)

    def add(self, document: Document) -> List[Chunk]:
        """Chunk and store a document; returns the new chunks.

        Raises:
            ConfigError: on duplicate document ids.
        """
        if document.doc_id in self._documents:
            raise ConfigError(f"duplicate document id {document.doc_id}")
        self._documents[document.doc_id] = document
        stride = self._chunk_tokens - self._overlap
        new_chunks = []
        for index, text in enumerate(chunk_text(document.text,
                                                self._chunk_tokens,
                                                self._overlap)):
            chunk = Chunk(chunk_id=len(self._chunks), doc_id=document.doc_id,
                          text=text, start_token=index * stride)
            self._chunks.append(chunk)
            new_chunks.append(chunk)
        return new_chunks

    def document(self, doc_id: str) -> Document:
        """Look up a document.

        Raises:
            ConfigError: for unknown ids.
        """
        if doc_id not in self._documents:
            raise ConfigError(f"unknown document {doc_id}")
        return self._documents[doc_id]

    def chunk(self, chunk_id: int) -> Chunk:
        """Look up a chunk by global id.

        Raises:
            ConfigError: for out-of-range ids.
        """
        if not 0 <= chunk_id < len(self._chunks):
            raise ConfigError(f"chunk id {chunk_id} out of range")
        return self._chunks[chunk_id]
