"""Vector retriever over a chunked corpus.

Embeds chunks with the hashing embedder and indexes them with either
the functional IVF-PQ engine (hyperscale-style ANN) or brute-force kNN
(Case II's freshly-encoded small databases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.ragstack.documents import Chunk, DocumentStore
from repro.ragstack.embedding import HashingEmbedder
from repro.retrieval.bruteforce import BruteForceIndex
from repro.retrieval.ivf import IVFPQIndex
from repro.retrieval.pq import ProductQuantizer


@dataclass(frozen=True)
class RetrievedChunk:
    """One retrieval hit.

    Attributes:
        chunk: The retrieved passage.
        score: Squared L2 distance in embedding space (lower is closer).
    """

    chunk: Chunk
    score: float


class VectorRetriever:
    """Nearest-neighbor retrieval over a document store.

    Args:
        store: Chunked corpus.
        embedder: Text embedder (shared by indexing and queries).
        use_ann: Index with IVF-PQ (True) or brute force (False). Small
            corpora fall back to brute force automatically.
        nlist: IVF cluster count for the ANN index.
        nprobe: Clusters scanned per query (the p_scan knob).
    """

    _MIN_ANN_CHUNKS = 256

    def __init__(self, store: DocumentStore,
                 embedder: Optional[HashingEmbedder] = None,
                 use_ann: bool = True, nlist: int = 64,
                 nprobe: int = 8) -> None:
        self._store = store
        self._embedder = embedder or HashingEmbedder()
        self._use_ann = use_ann
        self._nlist = nlist
        self._nprobe = nprobe
        self._index: "IVFPQIndex | BruteForceIndex | None" = None
        self._is_ann = False

    @property
    def embedder(self) -> HashingEmbedder:
        """The shared embedder."""
        return self._embedder

    @property
    def is_ann(self) -> bool:
        """Whether the built index is approximate."""
        return self._is_ann

    def build(self) -> "VectorRetriever":
        """Embed and index every chunk in the store.

        Raises:
            ConfigError: on an empty store.
        """
        chunks = self._store.chunks
        if not chunks:
            raise ConfigError("cannot build a retriever over an empty store")
        vectors = self._embedder.embed([chunk.text for chunk in chunks])
        if self._use_ann and len(chunks) >= self._MIN_ANN_CHUNKS:
            dim = self._embedder.dim
            subspaces = 16 if dim % 16 == 0 else 8
            quantizer = ProductQuantizer(num_subspaces=subspaces, seed=0)
            nlist = min(self._nlist, max(len(chunks) // 8, 1))
            index = IVFPQIndex(nlist=nlist, quantizer=quantizer, seed=0)
            index.build(vectors)
            self._index = index
            self._is_ann = True
        else:
            self._index = BruteForceIndex(vectors)
            self._is_ann = False
        return self

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        """Top-k chunks for a query string.

        Raises:
            ConfigError: when :meth:`build` has not run.
        """
        if self._index is None:
            raise ConfigError("retriever is not built yet")
        if k <= 0:
            raise ConfigError("k must be positive")
        vector = self._embedder.embed_one(query)
        if self._is_ann:
            distances, ids = self._index.search(vector, k=k,
                                                nprobe=self._nprobe)
        else:
            distances, ids = self._index.search(vector, k=k)
        hits = []
        for distance, chunk_id in zip(distances[0], ids[0]):
            if chunk_id < 0 or not np.isfinite(distance):
                continue
            hits.append(RetrievedChunk(chunk=self._store.chunk(int(chunk_id)),
                                       score=float(distance)))
        return hits
