"""Extractive answer generator.

Stands in for the paper's generative LLM: given the question and the
retrieved passages (the augmented prompt), it produces an answer by
selecting the passage sentences most relevant to the question. It is
deterministic, grounded in the retrieved content by construction (no
hallucination -- the property RAG exists to provide) and cites its
sources.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError
from repro.ragstack.retriever import RetrievedChunk

_SENTENCE_SPLIT = re.compile(r"(?<=[.!?])\s+")


@dataclass(frozen=True)
class Answer:
    """A generated answer with provenance.

    Attributes:
        text: The answer sentences, in source order of selection.
        sources: Document ids of the passages the sentences came from.
        passages: The reranked passages that formed the context.
    """

    text: str
    sources: Tuple[str, ...]
    passages: Tuple[RetrievedChunk, ...]


def _score_sentence(question_tokens: set, sentence: str) -> float:
    tokens = set(token.strip(".,;:!?\"'()").lower()
                 for token in sentence.split())
    tokens.discard("")
    if not tokens:
        return 0.0
    return len(question_tokens & tokens) / (len(tokens) ** 0.5)


class ExtractiveGenerator:
    """Select the most question-relevant sentences from the context.

    Args:
        max_sentences: Sentences in the generated answer.
        min_sentence_tokens: Ignore fragments shorter than this --
            chunk boundaries cut sentences mid-way, and a two-word
            fragment that happens to echo the question is not an answer.
    """

    def __init__(self, max_sentences: int = 2,
                 min_sentence_tokens: int = 4) -> None:
        if max_sentences <= 0:
            raise ConfigError("max_sentences must be positive")
        if min_sentence_tokens <= 0:
            raise ConfigError("min_sentence_tokens must be positive")
        self._max_sentences = max_sentences
        self._min_sentence_tokens = min_sentence_tokens

    def generate(self, question: str,
                 passages: List[RetrievedChunk]) -> Answer:
        """Produce a grounded answer from retrieved passages.

        Raises:
            ConfigError: on an empty question.
        """
        if not question.strip():
            raise ConfigError("question must be non-empty")
        if not passages:
            return Answer(text="No relevant information found.",
                          sources=(), passages=())
        question_tokens = set(
            token.strip(".,;:!?\"'()").lower()
            for token in question.split())
        question_tokens.discard("")
        candidates = []
        for rank, hit in enumerate(passages):
            for sentence in _SENTENCE_SPLIT.split(hit.chunk.text):
                sentence = sentence.strip()
                if not sentence:
                    continue
                if len(sentence.split()) < self._min_sentence_tokens:
                    continue
                if sentence[-1] not in ".!?":
                    # Chunk boundaries truncate sentences; a cut-off
                    # fragment is not a usable answer sentence.
                    continue
                score = _score_sentence(question_tokens, sentence)
                # Earlier (better-reranked) passages break score ties.
                candidates.append((-score, rank, hit.chunk.doc_id, sentence))
        candidates.sort()
        # Greedy selection with near-duplicate suppression: overlapping
        # chunks repeat sentences (and truncate them at boundaries).
        chosen = []
        chosen_token_sets = []
        for entry in candidates:
            tokens = set(entry[3].lower().split())
            duplicate = any(
                len(tokens & seen) >= 0.7 * min(len(tokens), len(seen))
                for seen in chosen_token_sets)
            if duplicate:
                continue
            chosen.append(entry)
            chosen_token_sets.append(tokens)
            if len(chosen) >= self._max_sentences:
                break
        chosen_sentences = [entry[3] for entry in chosen]
        sources = []
        for entry in chosen:
            if entry[2] not in sources:
                sources.append(entry[2])
        return Answer(text=" ".join(chosen_sentences),
                      sources=tuple(sources),
                      passages=tuple(passages))
