"""Rule-based query rewriter.

Stands in for the paper's 8B generative rewriter (§3.1, Paradigm IV):
it normalizes the query and can decompose compound questions into
multiple simpler queries -- the same *interface* (one query in, one or
several rewritten queries out) with deterministic behaviour.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError

#: Filler words removed during normalization.
STOPWORDS = frozenset((
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "is", "are",
    "was", "were", "be", "been", "do", "does", "did", "what", "which",
    "who", "whom", "whose", "when", "where", "how", "why", "please",
    "tell", "me", "about",
))

#: Conjunctions that split a compound question into sub-queries.
_SPLIT_MARKERS = (" and also ", " and ", "; ", ", and ")


class RuleBasedRewriter:
    """Deterministic query normalization and decomposition.

    Args:
        decompose: Split compound questions into multiple queries
            (multi-query retrieval, §5.1).
        max_queries: Cap on generated sub-queries.
    """

    def __init__(self, decompose: bool = True, max_queries: int = 4) -> None:
        if max_queries <= 0:
            raise ConfigError("max_queries must be positive")
        self._decompose = decompose
        self._max_queries = max_queries

    def normalize(self, query: str) -> str:
        """Lower-case, strip punctuation and filler words."""
        tokens = [token.strip(".,;:!?\"'()") for token in query.lower().split()]
        kept = [token for token in tokens if token and token not in STOPWORDS]
        return " ".join(kept) if kept else query.strip().lower()

    def rewrite(self, query: str) -> List[str]:
        """Rewrite a user query into one or more retrieval queries.

        Raises:
            ConfigError: on an empty query.
        """
        if not query.strip():
            raise ConfigError("query must be non-empty")
        parts = [query]
        if self._decompose:
            for marker in _SPLIT_MARKERS:
                if marker in query:
                    parts = [part for part in query.split(marker)
                             if part.strip()]
                    break
        rewritten = []
        for part in parts[:self._max_queries]:
            normalized = self.normalize(part)
            if normalized and normalized not in rewritten:
                rewritten.append(normalized)
        return rewritten or [self.normalize(query)]
