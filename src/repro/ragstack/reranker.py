"""Exact reranker.

Stands in for the paper's 120M cross-encoder reranker (§3.1): retrieval
candidates come back ranked by *quantized* vector distance; the reranker
re-scores each candidate against the query with an exact, richer signal
-- here, exact embedding distance blended with token overlap -- and
returns the top-n. Same interface, deterministic scoring.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError
from repro.ragstack.embedding import HashingEmbedder
from repro.ragstack.retriever import RetrievedChunk


def _token_overlap(query: str, text: str) -> float:
    query_tokens = set(query.lower().split())
    text_tokens = set(text.lower().split())
    if not query_tokens:
        return 0.0
    return len(query_tokens & text_tokens) / len(query_tokens)


class ExactReranker:
    """Re-score retrieval candidates with exact distances + overlap.

    Args:
        embedder: Shared embedder for exact distances.
        overlap_weight: Blend factor for the token-overlap bonus.
    """

    def __init__(self, embedder: Optional[HashingEmbedder] = None,
                 overlap_weight: float = 0.5) -> None:
        if overlap_weight < 0:
            raise ConfigError("overlap_weight must be non-negative")
        self._embedder = embedder or HashingEmbedder()
        self._overlap_weight = overlap_weight

    def rerank(self, query: str, candidates: List[RetrievedChunk],
               top_n: int = 5) -> List[RetrievedChunk]:
        """Return the best ``top_n`` candidates by the exact score.

        Scores are cosine *similarity* plus the overlap bonus, converted
        back to a distance-like score (lower is better) for interface
        consistency with the retriever.

        Raises:
            ConfigError: on non-positive ``top_n``.
        """
        if top_n <= 0:
            raise ConfigError("top_n must be positive")
        if not candidates:
            return []
        query_vec = self._embedder.embed_one(query)
        texts = [candidate.chunk.text for candidate in candidates]
        chunk_vecs = self._embedder.embed(texts)
        similarity = chunk_vecs @ query_vec
        scored = []
        for candidate, sim in zip(candidates, similarity):
            overlap = _token_overlap(query, candidate.chunk.text)
            quality = float(sim) + self._overlap_weight * overlap
            scored.append(RetrievedChunk(chunk=candidate.chunk,
                                         score=-quality))
        scored.sort(key=lambda hit: (hit.score, hit.chunk.chunk_id))
        # Deduplicate chunks that arrived via multiple queries.
        seen = set()
        unique = []
        for hit in scored:
            if hit.chunk.chunk_id in seen:
                continue
            seen.add(hit.chunk.chunk_id)
            unique.append(hit)
        return unique[:top_n]
