"""Deterministic hashing embedder.

Replaces the paper's 120M sentence-transformer encoder with a
dependency-free equivalent: each token hashes (with several independent
seeds) into signed buckets of a fixed-dimensional vector, the vector is
L2-normalized, and similar token bags land near each other. This is the
classic feature-hashing trick -- real enough that retrieval quality is
measurable and chunk/query semantics behave like embeddings.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigError


def _stable_hash(token: str, seed: int) -> int:
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8,
                             salt=seed.to_bytes(8, "little")).digest()
    return int.from_bytes(digest, "little")


class HashingEmbedder:
    """Feature-hashing text embedder.

    Args:
        dim: Embedding dimensionality (the paper uses 768).
        num_hashes: Independent hash functions per token; more hashes
            densify the vectors and improve similarity resolution.
        lowercase: Case-fold tokens before hashing.
    """

    def __init__(self, dim: int = 256, num_hashes: int = 4,
                 lowercase: bool = True) -> None:
        if dim <= 0:
            raise ConfigError("dim must be positive")
        if num_hashes <= 0:
            raise ConfigError("num_hashes must be positive")
        self._dim = dim
        self._num_hashes = num_hashes
        self._lowercase = lowercase

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self._dim

    def _tokens(self, text: str) -> List[str]:
        if self._lowercase:
            text = text.lower()
        return [token.strip(".,;:!?()[]\"'") for token in text.split()]

    def embed_one(self, text: str) -> np.ndarray:
        """Embed a single text into a unit-norm vector."""
        vector = np.zeros(self._dim, dtype=np.float32)
        for token in self._tokens(text):
            if not token:
                continue
            for seed in range(self._num_hashes):
                value = _stable_hash(token, seed)
                bucket = value % self._dim
                sign = 1.0 if (value >> 32) & 1 else -1.0
                vector[bucket] += sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed(self, texts: "Sequence[str] | Iterable[str]") -> np.ndarray:
        """Embed many texts; returns an (n, dim) float32 matrix."""
        rows = [self.embed_one(text) for text in texts]
        if not rows:
            return np.zeros((0, self._dim), dtype=np.float32)
        return np.stack(rows)
