"""End-to-end RAG performance assembly for a schedule.

Implements the paper's composition rules (§3.3): end-to-end latency is the
sum of stage latencies along the request path, and end-to-end throughput
is the minimum stage-group throughput. Collocated stage groups
time-multiplex a chip set, so the group's throughput is the harmonic
composition ``1 / sum(1 / QPS_i)``; disaggregated stages bound throughput
individually.

QPS/chip charges the schedule for its XPUs; retrieval runs on the CPUs of
the host servers that carry those XPUs (4 per server, §4), so CPU servers
are implied rather than separately charged, with a floor given by the
database's memory footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import CapacityError, ConfigError
from repro.inference.parallelism import ShardingPlan
from repro.pipeline.stage_perf import RAGPerfModel, StagePerf
from repro.schema.stages import Stage, spans_retrieval, ttft_stages, xpu_stages


@dataclass(frozen=True)
class PlacementGroup:
    """A set of XPU stages time-multiplexed on one chip allocation.

    Attributes:
        stages: Stages sharing the chips, in pipeline order. A group of
            one stage is a disaggregated placement.
        num_xpus: Accelerators allocated to the group.
    """

    stages: Tuple[Stage, ...]
    num_xpus: int

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigError("a placement group needs at least one stage")
        if Stage.RETRIEVAL in self.stages:
            raise ConfigError("retrieval runs on CPUs, not in an XPU group")
        if self.num_xpus <= 0:
            raise ConfigError("num_xpus must be positive")
        if Stage.DECODE in self.stages and len(self.stages) > 1:
            raise ConfigError("decode is always disaggregated (paper §6.1)")

    @property
    def collocated(self) -> bool:
        """Whether multiple stages share the chips."""
        return len(self.stages) > 1


@dataclass(frozen=True)
class Schedule:
    """A complete RAGO scheduling decision.

    Attributes:
        groups: XPU placement groups (must cover every XPU stage of the
            schema exactly once; decode in its own group).
        batches: Per-stage batch size, including retrieval.
        retrieval_servers: CPU servers for retrieval; None derives the
            host-server count from the XPU allocation (with the database
            capacity floor).
        iterative_batch: Batch size for decoder-initiated retrieval/prefix
            iterations (Case III); None reuses the retrieval batch.
        shard_plans: Optional per-stage sharding plan; stages without an
            entry use the throughput-optimal plan.
    """

    groups: Tuple[PlacementGroup, ...]
    batches: Mapping[Stage, int]
    retrieval_servers: Optional[int] = None
    iterative_batch: Optional[int] = None
    shard_plans: Mapping[Stage, "ShardingPlan"] = field(default_factory=dict)

    @property
    def total_xpus(self) -> int:
        """Accelerators the schedule occupies."""
        return sum(group.num_xpus for group in self.groups)

    def group_of(self, stage: Stage) -> PlacementGroup:
        """The placement group containing a stage."""
        for group in self.groups:
            if stage in group.stages:
                return group
        raise ConfigError(f"stage {stage} is not placed by this schedule")

    def describe(self) -> str:
        """Human-readable schedule summary (Table 4 style)."""
        parts = []
        for group in self.groups:
            names = "+".join(str(s) for s in group.stages)
            tag = "col" if group.collocated else "dis"
            parts.append(f"{names}[{group.num_xpus}xpu,{tag}]")
        batch_str = ",".join(f"{stage}={size}"
                             for stage, size in self.batches.items())
        return " | ".join(parts) + f" | batches: {batch_str}"


@dataclass(frozen=True)
class PipelinePerf:
    """End-to-end performance of one schedule.

    Attributes:
        ttft: Time-to-first-token in seconds.
        tpot: Worst-case time-per-output-token in seconds.
        qps: End-to-end requests per second.
        qps_per_chip: QPS normalized by the *charged* chip count.
        total_xpus: Accelerators running inference stages.
        charged_chips: Chips the deployment pays for: the inference XPUs,
            but never fewer than the XPU slots of the host servers the
            database occupies (a 16-server database implies 64 chip slots
            even if fewer run models, §4).
        retrieval_servers: CPU servers serving retrieval (0 if none).
        stage_perfs: Per-stage performance points used in the assembly.
        schedule: The schedule that produced these numbers.
    """

    ttft: float
    tpot: float
    qps: float
    qps_per_chip: float
    total_xpus: int
    charged_chips: int
    retrieval_servers: int
    stage_perfs: Dict[Stage, StagePerf] = field(repr=False, default_factory=dict)
    schedule: Optional[Schedule] = field(repr=False, default=None)


def _validate_coverage(perf_model: RAGPerfModel, schedule: Schedule) -> None:
    expected = list(xpu_stages(perf_model.schema))
    placed = [stage for group in schedule.groups for stage in group.stages]
    if sorted(placed, key=lambda s: s.value) != sorted(
            expected, key=lambda s: s.value):
        raise ConfigError(
            f"schedule places {sorted(s.value for s in placed)} but schema "
            f"needs {sorted(s.value for s in expected)}"
        )
    for stage in expected:
        if stage not in schedule.batches:
            raise ConfigError(f"no batch size for stage {stage}")
    if perf_model.schema.has_retrieval \
            and Stage.RETRIEVAL not in schedule.batches:
        raise ConfigError("no batch size for the retrieval stage")


def derive_retrieval_servers(perf_model: RAGPerfModel,
                             schedule: Schedule) -> int:
    """CPU servers implied by a schedule's XPU allocation.

    The XPU host servers run retrieval (4 XPUs per host); the database's
    memory footprint sets a floor. Raises :class:`CapacityError` when the
    cluster cannot host the XPUs.
    """
    cluster = perf_model.cluster
    hosts = cluster.servers_for_xpus(schedule.total_xpus)
    if hosts > cluster.num_servers:
        raise CapacityError(
            f"schedule needs {hosts} host servers for {schedule.total_xpus} "
            f"XPUs but the cluster has {cluster.num_servers}"
        )
    if not perf_model.schema.has_retrieval:
        return 0
    floor = perf_model.retrieval.min_servers()
    if floor > cluster.num_servers:
        raise CapacityError(
            f"database needs {floor} servers; cluster has "
            f"{cluster.num_servers}"
        )
    return max(hosts, floor)


def assemble(perf_model: RAGPerfModel, schedule: Schedule) -> PipelinePerf:
    """Compute end-to-end performance for one schedule.

    Raises:
        ConfigError: if the schedule does not cover the schema's stages.
        CapacityError: if any stage allocation is infeasible.
    """
    schema = perf_model.schema
    _validate_coverage(perf_model, schedule)
    cluster = perf_model.cluster
    if schedule.total_xpus > cluster.total_xpus:
        raise CapacityError(
            f"schedule uses {schedule.total_xpus} XPUs; cluster has "
            f"{cluster.total_xpus}"
        )

    servers = schedule.retrieval_servers
    if servers is None:
        servers = derive_retrieval_servers(perf_model, schedule)

    stage_perfs: Dict[Stage, StagePerf] = {}
    for group in schedule.groups:
        for stage in group.stages:
            stage_perfs[stage] = perf_model.perf(
                stage, schedule.batches[stage], group.num_xpus,
                plan=schedule.shard_plans.get(stage))
    if schema.has_retrieval:
        stage_perfs[Stage.RETRIEVAL] = perf_model.perf(
            Stage.RETRIEVAL, schedule.batches[Stage.RETRIEVAL], servers)

    # --- Iterative retrieval adjustments (Case III). ------------------
    # Each sequence performs `freq` retrievals and `freq` prefix passes
    # (initial + re-integrations), loading those stages proportionally,
    # and the decode stage's sequence latency absorbs the iteration
    # latencies (stall effects are studied separately with the DES).
    freq = schema.retrieval_frequency if schema.has_retrieval else 0
    visits = {stage: 1.0 for stage in stage_perfs}
    if schema.is_iterative:
        visits[Stage.RETRIEVAL] = float(freq)
        visits[Stage.PREFIX] = float(freq)

    decode_extra = 0.0
    if schema.is_iterative:
        iter_batch = schedule.iterative_batch or schedule.batches[
            Stage.RETRIEVAL]
        iter_retrieval = perf_model.perf(Stage.RETRIEVAL, iter_batch, servers)
        iter_prefix = perf_model.perf(
            Stage.PREFIX, iter_batch,
            schedule.group_of(Stage.PREFIX).num_xpus)
        decode_extra = (freq - 1) * (iter_retrieval.latency
                                     + iter_prefix.latency)

    # --- Throughput: min over stage groups (harmonic within a group). --
    # A collocated group that straddles retrieval pauses for it (§6.1),
    # so the retrieval latency joins that group's time-multiplex cycle.
    retrieval_qps = math.inf
    if schema.has_retrieval:
        retrieval_qps = (stage_perfs[Stage.RETRIEVAL].request_qps
                         / visits.get(Stage.RETRIEVAL, 1.0))
    bottleneck = math.inf
    for group in schedule.groups:
        inverse = 0.0
        for stage in group.stages:
            qps = stage_perfs[stage].request_qps / visits[stage]
            if stage is Stage.DECODE and decode_extra > 0:
                base = stage_perfs[stage]
                qps = base.batch / (base.latency + decode_extra)
            inverse += 1.0 / qps
        if group.collocated and spans_retrieval(group.stages, schema):
            inverse += 1.0 / retrieval_qps
        bottleneck = min(bottleneck, 1.0 / inverse)
    if schema.has_retrieval:
        bottleneck = min(bottleneck, retrieval_qps)

    # --- TTFT: sum of request-path latencies up to the first token. ----
    ttft = 0.0
    for stage in ttft_stages(schema):
        ttft += stage_perfs[stage].latency

    decode_perf = stage_perfs[Stage.DECODE]
    tpot = decode_perf.tpot if decode_perf.tpot is not None else 0.0
    if decode_extra > 0 and schema.sequences.decode_len > 0:
        tpot += decode_extra / schema.sequences.decode_len

    total_xpus = schedule.total_xpus
    charged = max(total_xpus, servers * cluster.xpus_per_server)
    return PipelinePerf(
        ttft=ttft,
        tpot=tpot,
        qps=bottleneck,
        qps_per_chip=bottleneck / charged,
        total_xpus=total_xpus,
        charged_chips=charged,
        retrieval_servers=servers,
        stage_perfs=stage_perfs,
        schedule=schedule,
    )
