"""RAG pipeline performance assembly.

Connects a :class:`~repro.schema.RAGSchema` to the inference and retrieval
cost models: per-stage performance (:mod:`repro.pipeline.stage_perf`),
end-to-end TTFT/TPOT/QPS assembly for a schedule
(:mod:`repro.pipeline.assembly`), resource-normalized time breakdowns
(:mod:`repro.pipeline.breakdown`), the iterative-retrieval discrete-event
model (:mod:`repro.pipeline.iterative`) and the micro-batching model
(:mod:`repro.pipeline.microbatch`).
"""

from repro.pipeline.stage_perf import RAGPerfModel, StagePerf
from repro.pipeline.assembly import (
    PipelinePerf,
    PlacementGroup,
    Schedule,
    assemble,
)
from repro.pipeline.breakdown import time_breakdown
from repro.pipeline.iterative import IterativeDecodeResult, simulate_iterative_decode
from repro.pipeline.microbatch import microbatch_ttft, ttft_reduction
from repro.pipeline.execution_order import OrderResult, simulate_collocated_order

__all__ = [
    "RAGPerfModel",
    "StagePerf",
    "PlacementGroup",
    "Schedule",
    "PipelinePerf",
    "assemble",
    "time_breakdown",
    "simulate_iterative_decode",
    "IterativeDecodeResult",
    "microbatch_ttft",
    "ttft_reduction",
    "simulate_collocated_order",
    "OrderResult",
]
