"""Discrete-event model of iterative retrievals during decoding (Case III).

§5.3 of the paper: sequences pause token generation when they issue a
retrieval; the retrieval is dispatched only once ``iterative_batch``
requests have accumulated, so decoding slots sit idle while peers finish
filling the batch. Fig. 9 studies TPOT under this process and Fig. 10
isolates the idleness by setting the retrieval+prefix latency to zero.

The simulation advances in decode-step ticks: every tick, all actively
decoding sequences emit one token; sequences that hit one of their
(uniform-random) retrieval positions block until the retrieval batch has
been dispatched and completed; queues dispatch in FIFO batches of
``iterative_batch``; a partial batch is flushed only when nothing else
can make progress (the last stragglers must not deadlock).

**Prefetching extension (§8).** The paper observes that PipeRAG-style
data prefetching "will reduce decoding engine idleness during retrieval
operations". With ``prefetch_tokens > 0``, a sequence *issues* its
retrieval that many tokens before the integration position and keeps
decoding while the retrieval is in flight; it only blocks if the result
has not arrived by the time it reaches the position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class IterativeDecodeResult:
    """Outcome of one iterative-decoding cohort simulation.

    Attributes:
        total_time: Seconds until every sequence finished decoding.
        normalized_latency: ``total_time`` divided by the no-retrieval
            decoding time (Fig. 10's metric).
        mean_tpot: Mean per-sequence completion time divided by tokens.
        worst_tpot: Cohort completion time divided by tokens (the paper
            reports worst-case TPOT under continuous batching).
        idle_sequence_steps: Total sequence-steps spent blocked on
            retrieval (the idleness Fig. 10 visualizes).
        dispatches: Number of retrieval batches issued.
    """

    total_time: float
    normalized_latency: float
    mean_tpot: float
    worst_tpot: float
    idle_sequence_steps: float
    dispatches: int


_ACTIVE, _BLOCKED, _DONE = range(3)


class _Sequence:
    """Per-sequence simulation state."""

    __slots__ = ("positions", "next_event", "tokens", "status",
                 "queued", "resume_time", "completion")

    def __init__(self, positions: List[int]) -> None:
        self.positions = positions
        self.next_event = 0
        self.tokens = 0
        self.status = _ACTIVE
        self.queued = False        # issued, waiting for batch dispatch
        self.resume_time: Optional[float] = None  # completion of dispatch
        self.completion = 0.0

    @property
    def pending_position(self) -> Optional[int]:
        if self.next_event < len(self.positions):
            return self.positions[self.next_event]
        return None


def simulate_iterative_decode(decode_batch: int, iterative_batch: int,
                              decode_len: int, retrievals_per_seq: int,
                              step_latency: float = 1.0,
                              iteration_latency: float = 0.0,
                              prefetch_tokens: int = 0,
                              seed: int = 0) -> IterativeDecodeResult:
    """Simulate one cohort of sequences decoding with iterative retrievals.

    Args:
        decode_batch: Sequences decoding concurrently.
        iterative_batch: Retrieval requests batched per dispatch.
        decode_len: Tokens each sequence generates.
        retrievals_per_seq: Retrievals triggered *during* decoding (the
            paper's "N retrievals" includes the initial one, so pass
            ``frequency - 1``).
        step_latency: Seconds per decode step.
        iteration_latency: Seconds for one retrieval + prefix iteration
            (0 isolates batching idleness, Fig. 10).
        prefetch_tokens: Issue each retrieval this many tokens before
            its integration position and keep decoding meanwhile (0 =
            the paper's blocking behaviour; >0 = PipeRAG-style
            prefetching, §8).
        seed: RNG seed for retrieval positions.

    Raises:
        ConfigError: on non-positive sizes or too many retrievals to fit
            distinct token positions.
    """
    if decode_batch <= 0 or iterative_batch <= 0:
        raise ConfigError("batch sizes must be positive")
    if decode_len <= 1:
        raise ConfigError("decode_len must exceed 1")
    if retrievals_per_seq < 0:
        raise ConfigError("retrievals_per_seq must be non-negative")
    if retrievals_per_seq > decode_len - 1:
        raise ConfigError("more retrievals than decodable positions")
    if step_latency <= 0:
        raise ConfigError("step_latency must be positive")
    if iteration_latency < 0:
        raise ConfigError("iteration_latency must be non-negative")
    if prefetch_tokens < 0:
        raise ConfigError("prefetch_tokens must be non-negative")

    rng = np.random.default_rng(seed)
    sequences: List[_Sequence] = []
    for _ in range(decode_batch):
        if retrievals_per_seq:
            chosen = rng.choice(np.arange(1, decode_len),
                                size=retrievals_per_seq, replace=False)
            sequences.append(_Sequence(sorted(int(p) for p in chosen)))
        else:
            sequences.append(_Sequence([]))

    paused_queue: List[int] = []
    now = 0.0
    idle_steps = 0.0
    dispatches = 0
    finished = 0

    def dispatch(batch_ids: List[int]) -> None:
        nonlocal dispatches
        dispatches += 1
        for index in batch_ids:
            sequences[index].resume_time = now + iteration_latency

    while finished < decode_batch:
        # Wake sequences whose retrieval iteration has completed.
        for seq in sequences:
            if seq.status == _BLOCKED and seq.resume_time is not None \
                    and seq.resume_time <= now:
                seq.status = _ACTIVE
                seq.queued = False
                seq.resume_time = None
                seq.next_event += 1

        active = [i for i, seq in enumerate(sequences)
                  if seq.status == _ACTIVE]
        if active:
            now += step_latency
            idle_steps += sum(1 for seq in sequences
                              if seq.status == _BLOCKED)
            for index in active:
                seq = sequences[index]
                # A woken sequence may still sit exactly at a completed
                # position; it advances normally below.
                seq.tokens += 1
                position = seq.pending_position
                if position is not None and not seq.queued \
                        and seq.tokens >= max(position - prefetch_tokens, 1):
                    seq.queued = True
                    paused_queue.append(index)
                if position is not None and seq.tokens >= position:
                    if seq.resume_time is not None \
                            and seq.resume_time <= now:
                        # Prefetched result already arrived: integrate
                        # and continue without blocking.
                        seq.queued = False
                        seq.resume_time = None
                        seq.next_event += 1
                        position = None
                    else:
                        seq.status = _BLOCKED
                        continue
                if seq.tokens >= decode_len:
                    seq.status = _DONE
                    seq.completion = now
                    finished += 1
            while len(paused_queue) >= iterative_batch:
                dispatch(paused_queue[:iterative_batch])
                del paused_queue[:iterative_batch]
            continue

        # Nothing is decoding: either jump to the next retrieval
        # completion, or flush a partial batch so stragglers finish.
        in_flight = [seq.resume_time for seq in sequences
                     if seq.status == _BLOCKED
                     and seq.resume_time is not None]
        future = [t for t in in_flight if t > now]
        if future:
            next_wake = min(future)
            idle_steps += ((next_wake - now) / step_latency
                           * sum(1 for seq in sequences
                                 if seq.status == _BLOCKED))
            now = next_wake
        elif paused_queue:
            dispatch(list(paused_queue))
            paused_queue.clear()
        else:  # pragma: no cover - defensive; loop invariant prevents it
            raise ConfigError("iterative simulation stalled")

    baseline = decode_len * step_latency
    completions = [seq.completion for seq in sequences]
    total = now
    return IterativeDecodeResult(
        total_time=total,
        normalized_latency=total / baseline,
        mean_tpot=float(np.mean(completions)) / decode_len,
        worst_tpot=total / decode_len,
        idle_sequence_steps=idle_steps,
        dispatches=dispatches,
    )
