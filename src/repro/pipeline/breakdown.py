"""Resource-normalized time breakdowns (Figs. 6c/d, 7, 8b, 11).

The paper's breakdown plots are "normalized by the resource usage of each
component, reflecting time x resource consumption", assuming four XPUs
per host server and every component running at its maximum QPS/chip (§5).
Concretely: a component's share is proportional to the chip-seconds (or
chip-equivalent server-seconds) it consumes per request when operating at
its best per-chip efficiency.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.errors import CapacityError
from repro.pipeline.stage_perf import RAGPerfModel
from repro.schema.stages import Stage, pipeline_stages

#: Batch sizes scanned when looking for a stage's peak per-chip QPS.
DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def max_qps_per_chip(perf_model: RAGPerfModel, stage: Stage,
                     batches: Sequence[int] = DEFAULT_BATCHES,
                     resources: Optional[Iterable[int]] = None) -> float:
    """Best request QPS per chip-equivalent a stage can reach.

    Retrieval servers are charged at four chips each (the host-server
    equivalence of §4/§5); inference stages are charged their XPUs.

    Raises:
        CapacityError: when the stage is infeasible at every scanned
            point.
    """
    xpus_per_server = perf_model.cluster.xpus_per_server
    if resources is None:
        base = perf_model.min_resource(stage)
        resources = (base, base * 2, base * 4)
    best = 0.0
    feasible = False
    for resource in resources:
        for batch in batches:
            try:
                perf = perf_model.perf(stage, batch, resource)
            except CapacityError:
                continue
            feasible = True
            if perf.resource_type == "cpu_server":
                chips = perf.resource_amount * xpus_per_server
            else:
                chips = perf.resource_amount
            best = max(best, perf.request_qps / chips)
    if not feasible:
        raise CapacityError(f"stage {stage} infeasible at all scanned points")
    return best


def time_breakdown(perf_model: RAGPerfModel,
                   batches: Sequence[int] = DEFAULT_BATCHES) -> Dict[Stage, float]:
    """Fractional time x resource share of each pipeline stage.

    Each stage's cost is the chip-seconds per request at its peak
    per-chip efficiency, ``1 / max_qps_per_chip``; shares sum to 1.
    Iterative schemas charge the retrieval and prefix stages once per
    retrieval (they run ``retrieval_frequency`` times per request).
    """
    schema = perf_model.schema
    costs: Dict[Stage, float] = {}
    freq = schema.retrieval_frequency
    for stage in pipeline_stages(schema):
        cost = 1.0 / max_qps_per_chip(perf_model, stage, batches)
        if schema.is_iterative and stage in (Stage.RETRIEVAL, Stage.PREFIX):
            cost *= freq
        costs[stage] = cost
    total = sum(costs.values())
    return {stage: cost / total for stage, cost in costs.items()}
