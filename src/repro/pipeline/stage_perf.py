"""Per-stage performance evaluation.

:class:`RAGPerfModel` answers, for every stage of a schema's pipeline:
"at batch size B with R resources, what latency and sustained request
throughput can this stage deliver?" -- the quantity Algorithm 1's step 1
profiles. Prefill-flavoured stages return a small Pareto frontier over
sharding plans (tensor-parallel plans minimize latency, pipeline-parallel
plans maximize throughput); decode and retrieval return a single point.
Results are cached; RAGO's exhaustive search hits the same points
repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.hardware.cluster import ClusterSpec
from repro.inference.memory import MemoryModel
from repro.inference.parallelism import ShardingPlan
from repro.inference.simulator import InferenceSimulator
from repro.models.transformer import TransformerConfig
from repro.retrieval.simulator import RetrievalSimulator
from repro.schema.ragschema import RAGSchema
from repro.schema.stages import Stage

#: Stages whose cost is a prefill pass of some model.
_PREFILL_STAGES = (Stage.DATABASE_ENCODE, Stage.REWRITE_PREFIX,
                   Stage.RERANK, Stage.PREFIX)


@dataclass(frozen=True)
class StagePerf:
    """Performance of one stage at one (batch, resource, plan) point.

    Attributes:
        stage: Which pipeline stage.
        latency: Seconds for one request batch to clear the stage.
        request_qps: Requests per second the stage sustains.
        batch: Request batch size evaluated.
        resource_amount: XPUs (inference stages) or CPU servers
            (retrieval).
        resource_type: ``"xpu"`` or ``"cpu_server"``.
        plan: Sharding plan used (None for retrieval).
        tpot: Worst-case time-per-output-token; only set for decode-like
            stages.
    """

    stage: Stage
    latency: float
    request_qps: float
    batch: int
    resource_amount: int
    resource_type: str
    plan: Optional[ShardingPlan] = None
    tpot: Optional[float] = None


class RAGPerfModel:
    """Stage-level cost model for one schema on one cluster."""

    def __init__(self, schema: RAGSchema, cluster: ClusterSpec,
                 memory: Optional[MemoryModel] = None,
                 retrieval_base_latency: float = 1e-4) -> None:
        self._schema = schema
        self._cluster = cluster
        self._inference = InferenceSimulator(cluster.xpu, memory)
        self._retrieval: Optional[RetrievalSimulator] = None
        if schema.has_retrieval:
            self._retrieval = RetrievalSimulator(
                schema.database, cluster.cpu,
                brute_force=schema.brute_force_retrieval,
                base_latency=retrieval_base_latency,
            )
        self._cache: Dict[Tuple[Stage, int, int],
                          Tuple[StagePerf, ...]] = {}
        self._plan_cache: Dict[Tuple[Stage, int, int, ShardingPlan],
                               StagePerf] = {}
        self._hits = 0
        self._misses = 0

    @property
    def schema(self) -> RAGSchema:
        """Workload being modelled."""
        return self._schema

    @property
    def cluster(self) -> ClusterSpec:
        """Hardware pool being modelled."""
        return self._cluster

    @property
    def inference(self) -> InferenceSimulator:
        """Underlying inference simulator (shared caches)."""
        return self._inference

    @property
    def retrieval(self) -> Optional[RetrievalSimulator]:
        """Underlying retrieval simulator, if the schema retrieves."""
        return self._retrieval

    def stage_model(self, stage: Stage) -> TransformerConfig:
        """The transformer a given XPU stage runs.

        Raises:
            ConfigError: for retrieval (no model) or stages absent from
                the schema.
        """
        schema = self._schema
        if stage is Stage.DATABASE_ENCODE and schema.document_encoder:
            return schema.document_encoder
        if stage in (Stage.REWRITE_PREFIX, Stage.REWRITE_DECODE) \
                and schema.query_rewriter:
            return schema.query_rewriter
        if stage is Stage.RERANK and schema.query_reranker:
            return schema.query_reranker
        if stage in (Stage.PREFIX, Stage.DECODE):
            return schema.generative_llm
        raise ConfigError(f"stage {stage} is not part of {schema.name}")

    def min_resource(self, stage: Stage) -> int:
        """Smallest resource count at which the stage is feasible."""
        if stage is Stage.RETRIEVAL:
            if self._retrieval is None:
                raise ConfigError("schema has no retrieval stage")
            return self._retrieval.min_servers()
        return self._inference.min_chips(self.stage_model(stage))

    def perf_options(self, stage: Stage, batch: int,
                     resource: int) -> Tuple[StagePerf, ...]:
        """Pareto performance points at a (batch, resource) pair (cached).

        Sorted by ascending latency (and ascending QPS -- the frontier is
        monotone), so the first entry is latency-optimal and the last is
        throughput-optimal.

        Raises:
            CapacityError: infeasible resource count (weights/KV/database
                do not fit).
            ConfigError: invalid sizes or absent stage.
        """
        if batch <= 0:
            raise ConfigError("batch must be positive")
        if resource <= 0:
            raise ConfigError("resource must be positive")
        key = (stage, batch, resource)
        if key not in self._cache:
            self._misses += 1
            self._cache[key] = self._evaluate(stage, batch, resource)
        else:
            self._hits += 1
        return self._cache[key]

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Cache effectiveness counters (hits/misses across the stage
        frontier cache and the off-frontier plan cache)."""
        return {"hits": self._hits, "misses": self._misses,
                "stage_points": len(self._cache),
                "plan_points": len(self._plan_cache)}

    def perf(self, stage: Stage, batch: int, resource: int,
             plan: Optional[ShardingPlan] = None) -> StagePerf:
        """One performance point.

        Args:
            plan: Evaluate this exact sharding plan; None picks the
                throughput-optimal frontier point (serving systems run
                prefill pipelined at steady state).
        """
        options = self.perf_options(stage, batch, resource)
        if plan is None:
            return options[-1]
        for option in options:
            if option.plan == plan:
                return option
        # Off-frontier plans recur across search candidates and repeated
        # assemblies (every frontier re-evaluation in search_schedules),
        # so they get their own cache.
        key = (stage, batch, resource, plan)
        if key not in self._plan_cache:
            self._misses += 1
            self._plan_cache[key] = self._evaluate_plan(stage, batch,
                                                        resource, plan)
        else:
            self._hits += 1
        return self._plan_cache[key]

    # ------------------------------------------------------------------

    def _prefill_seq(self, stage: Stage) -> Tuple[int, int]:
        """(sequences per request, tokens per sequence) for a prefill
        stage."""
        seq = self._schema.sequences
        if stage is Stage.DATABASE_ENCODE:
            chunks = seq.num_chunks
            if chunks <= 0:
                raise ConfigError("encode stage needs a context length")
            return chunks, seq.chunk_len
        if stage is Stage.REWRITE_PREFIX:
            return 1, seq.question_len
        if stage is Stage.RERANK:
            return seq.rerank_candidates, seq.passage_len
        if stage is Stage.PREFIX:
            return 1, seq.prefix_len
        raise ConfigError(f"{stage} is not a prefill stage")

    def _evaluate(self, stage: Stage, batch: int,
                  resource: int) -> Tuple[StagePerf, ...]:
        seq = self._schema.sequences
        if stage is Stage.RETRIEVAL:
            if self._retrieval is None:
                raise ConfigError("schema has no retrieval stage")
            perf = self._retrieval.perf(
                batch, resource,
                queries_per_request=self._schema.queries_per_retrieval)
            return (StagePerf(stage=stage, latency=perf.latency,
                              request_qps=perf.request_qps, batch=batch,
                              resource_amount=resource,
                              resource_type="cpu_server"),)
        model = self.stage_model(stage)
        if stage in _PREFILL_STAGES:
            per_request, tokens = self._prefill_seq(stage)
            frontier = self._inference.prefill_options(
                model, resource, batch * per_request, tokens)
            return tuple(
                StagePerf(stage=stage, latency=pf.latency,
                          request_qps=pf.throughput / per_request,
                          batch=batch, resource_amount=resource,
                          resource_type="xpu", plan=pf.plan)
                for pf in frontier)
        if stage is Stage.REWRITE_DECODE:
            decode = self._inference.decode(model, resource, batch,
                                            seq.question_len,
                                            seq.rewrite_output_len)
            return (StagePerf(stage=stage, latency=decode.sequence_latency,
                              request_qps=decode.throughput, batch=batch,
                              resource_amount=resource, resource_type="xpu",
                              plan=decode.plan, tpot=decode.tpot),)
        if stage is Stage.DECODE:
            decode = self._inference.decode(model, resource, batch,
                                            seq.prefix_len, seq.decode_len)
            return (StagePerf(stage=stage, latency=decode.sequence_latency,
                              request_qps=decode.throughput, batch=batch,
                              resource_amount=resource, resource_type="xpu",
                              plan=decode.plan, tpot=decode.tpot),)
        raise ConfigError(f"unhandled stage {stage}")

    def _evaluate_plan(self, stage: Stage, batch: int, resource: int,
                       plan: ShardingPlan) -> StagePerf:
        """Evaluate a specific plan that is off the cached frontier."""
        if stage not in _PREFILL_STAGES:
            raise ConfigError(
                f"stage {stage} does not accept explicit sharding plans"
            )
        model = self.stage_model(stage)
        per_request, tokens = self._prefill_seq(stage)
        pf = self._inference.prefill(model, resource, batch * per_request,
                                     tokens, plan=plan)
        return StagePerf(stage=stage, latency=pf.latency,
                         request_qps=pf.throughput / per_request,
                         batch=batch, resource_amount=resource,
                         resource_type="xpu", plan=pf.plan)
