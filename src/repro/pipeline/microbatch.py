"""Micro-batching of burst requests through the pre-decode stages.

§6.1 [III] / §7.2 (Fig. 19): when a burst of user requests arrives, the
stages before decoding can process it as one large batch or as pipelined
micro-batches. Micro-batching reduces TTFT when every stage retains
reasonable throughput at the smaller batch size; it is ineffective when a
stage's latency stops improving below some batch size (e.g. vector search
below ~16 queries).

The execution model matches Fig. 14: micro-batch *j* starts at stage *k*
as soon as both stage *k* is free and micro-batch *j* has cleared stage
*k - 1*; the final-stage completion of a request's micro-batch is its
TTFT.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Sequence

from repro.errors import ConfigError
from repro.pipeline.stage_perf import RAGPerfModel
from repro.schema.stages import Stage, ttft_stages

#: A stage's batch latency as a function of batch size.
StageLatencyFn = Callable[[int], float]


def microbatch_ttft(stage_latencies: Sequence[StageLatencyFn],
                    burst_size: int, microbatch_size: int) -> float:
    """Mean TTFT for a burst pipelined through stages in micro-batches.

    Args:
        stage_latencies: One ``latency(batch)`` function per pre-decode
            stage, in pipeline order.
        burst_size: Requests arriving simultaneously.
        microbatch_size: Requests per micro-batch; values >= burst_size
            degenerate to single-batch execution.

    Returns:
        Mean seconds until a request's micro-batch clears the last stage,
        weighted by micro-batch sizes.

    Raises:
        ConfigError: on empty stages or non-positive sizes.
    """
    if not stage_latencies:
        raise ConfigError("need at least one stage")
    if burst_size <= 0 or microbatch_size <= 0:
        raise ConfigError("burst_size and microbatch_size must be positive")
    microbatch_size = min(microbatch_size, burst_size)
    num_batches = math.ceil(burst_size / microbatch_size)
    sizes = [microbatch_size] * num_batches
    sizes[-1] = burst_size - microbatch_size * (num_batches - 1)

    num_stages = len(stage_latencies)
    finish = [[0.0] * num_stages for _ in range(num_batches)]
    for j, size in enumerate(sizes):
        for k, latency_fn in enumerate(stage_latencies):
            ready = finish[j][k - 1] if k else 0.0
            free = finish[j - 1][k] if j else 0.0
            finish[j][k] = max(ready, free) + latency_fn(size)

    weighted = sum(finish[j][num_stages - 1] * sizes[j]
                   for j in range(num_batches))
    return weighted / burst_size


def stage_latency_functions(perf_model: RAGPerfModel,
                            resources: Mapping[Stage, int],
                            stages: "Sequence[Stage] | None" = None) -> List[StageLatencyFn]:
    """Latency functions for a schema's pre-decode stages at fixed
    resources.

    Args:
        perf_model: Stage-level cost model.
        resources: Resource amount per stage (XPUs, or CPU servers for
            retrieval).
        stages: Pipeline stages to include, in order. Defaults to the
            TTFT stages; pass an explicit list to include the database
            encoder when the burst carries fresh contexts to encode
            (Fig. 19b treats encoding as part of the pre-decode burst
            pipeline).

    Raises:
        ConfigError: when a listed stage has no resource entry.
    """
    if stages is None:
        stages = ttft_stages(perf_model.schema)
    functions: List[StageLatencyFn] = []
    for stage in stages:
        if stage not in resources:
            raise ConfigError(f"no resource allocation for stage {stage}")
        amount = resources[stage]

        def latency(batch: int, _stage: Stage = stage,
                    _amount: int = amount) -> float:
            return perf_model.perf(_stage, batch, _amount).latency

        functions.append(latency)
    return functions


def ttft_reduction(perf_model: RAGPerfModel, resources: Mapping[Stage, int],
                   burst_size: int, microbatch_sizes: Sequence[int],
                   stages: "Sequence[Stage] | None" = None) -> Dict[int, float]:
    """Fractional TTFT reduction from micro-batching a burst (Fig. 19).

    Returns:
        ``{microbatch_size: reduction}`` where reduction is
        ``1 - TTFT_micro / TTFT_full_batch`` (clamped at 0: micro-batching
        never *helps* by construction when a stage has flat latency, and
        the paper reports 0 in those cells).
    """
    stages = stage_latency_functions(perf_model, resources, stages)
    full = microbatch_ttft(stages, burst_size, burst_size)
    reductions: Dict[int, float] = {}
    for size in microbatch_sizes:
        micro = microbatch_ttft(stages, burst_size, size)
        reductions[size] = max(0.0, 1.0 - micro / full)
    return reductions
