"""Execution order of batched requests in a collocated group (Fig. 14).

In a time-multiplexed collocated design, once per-stage batch sizes are
fixed, the *order* in which the shared chips run pending stage-batches
still matters: the paper shows the optimal order prioritizes completing
the final stage's small batches early over starting another round of an
earlier stage, minimizing the average completion time of the final
stage ("Delayed finish" in Fig. 14b).

This module simulates a burst of requests flowing through a collocated
stage chain on one shared resource under two policies:

* ``deepest_first`` -- among runnable stage-batches, run the one
  furthest along the pipeline (the paper's optimal order);
* ``stage_sequential`` -- drain each stage's queue fully before touching
  the next (the suboptimal order of Fig. 14b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import ConfigError

#: A stage's batch latency as a function of batch size.
LatencyFn = Callable[[int], float]


@dataclass(frozen=True)
class OrderResult:
    """Outcome of one execution-order simulation.

    Attributes:
        mean_completion: Mean time at which a request cleared the final
            stage.
        makespan: Time the last request cleared the final stage.
        completions: Per-request final-stage completion times.
    """

    mean_completion: float
    makespan: float
    completions: List[float]


def simulate_collocated_order(stage_latencies: Sequence[LatencyFn],
                              batch_sizes: Sequence[int], burst: int,
                              policy: str = "deepest_first") -> OrderResult:
    """Simulate a burst through collocated stages on one chip set.

    All ``burst`` requests are present at time zero. A stage-batch is
    runnable when the stage has at least its batch size queued, or when
    no later work exists and a partial batch is all that remains. The
    shared resource runs one stage-batch at a time.

    Args:
        stage_latencies: Per-stage ``latency(batch)`` functions in
            pipeline order.
        batch_sizes: Per-stage batch sizes (the Fig. 14 example uses
            4, 2, 1).
        burst: Requests arriving together.
        policy: ``"deepest_first"`` (optimal) or ``"stage_sequential"``.

    Raises:
        ConfigError: on inconsistent inputs or unknown policy.
    """
    if len(stage_latencies) != len(batch_sizes):
        raise ConfigError("one batch size per stage required")
    if not stage_latencies:
        raise ConfigError("need at least one stage")
    if burst <= 0 or any(b <= 0 for b in batch_sizes):
        raise ConfigError("burst and batch sizes must be positive")
    if policy not in ("deepest_first", "stage_sequential"):
        raise ConfigError(f"unknown policy {policy!r}")

    num_stages = len(stage_latencies)
    # queues[s] holds (request_id) waiting at stage s.
    queues: List[List[int]] = [[] for _ in range(num_stages)]
    queues[0] = list(range(burst))
    completions = [math.inf] * burst
    now = 0.0
    remaining = burst * num_stages  # stage passes left

    def runnable(stage: int) -> bool:
        need = batch_sizes[stage]
        if len(queues[stage]) >= need:
            return True
        # A partial batch is runnable when no earlier stage can feed it.
        if queues[stage] and all(not queues[e] for e in range(stage)):
            return True
        return False

    while remaining > 0:
        candidates = [s for s in range(num_stages) if runnable(s)]
        if not candidates:  # pragma: no cover - conservation guard
            raise ConfigError("execution-order simulation stalled")
        if policy == "deepest_first":
            stage = max(candidates)
        else:
            stage = min(candidates)
        take = min(batch_sizes[stage], len(queues[stage]))
        batch = queues[stage][:take]
        del queues[stage][:take]
        now += stage_latencies[stage](take)
        remaining -= take
        if stage + 1 < num_stages:
            queues[stage + 1].extend(batch)
        else:
            for request in batch:
                completions[request] = now

    return OrderResult(
        mean_completion=sum(completions) / burst,
        makespan=max(completions),
        completions=completions,
    )
