"""Plain-text table formatting for benchmark output.

The benches regenerate the paper's tables and figures as printed rows;
this keeps the harness dependency-free and diff-friendly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: Column names.
        rows: Row values; each must match the header count. Floats are
            rendered with four significant digits.
        title: Optional title line.

    Raises:
        ConfigError: on ragged rows.
    """
    if not headers:
        raise ConfigError("need at least one column")
    rendered: List[List[str]] = [[_cell(value) for value in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row {row!r} has {len(row)} cells; expected {len(headers)}"
            )
        rendered.append([_cell(value) for value in row])
    widths = [max(len(line[col]) for line in rendered)
              for col in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    for index, line in enumerate(rendered):
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(line, widths)))
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_live_summary(snapshot) -> str:
    """Render a :class:`~repro.sim.LiveSnapshot` as a one-row table.

    The printable heartbeat of ``repro serve``: offered / completed /
    in-flight counts, sustained throughput and running latency means at
    the snapshot's simulated time.
    """
    table = format_table(
        ("sim time (s)", "offered", "completed", "in flight", "QPS",
         "mean TTFT (ms)", "mean TPOT (ms)"),
        [[snapshot.now, snapshot.offered, snapshot.completed,
          snapshot.in_flight, snapshot.throughput,
          snapshot.mean_ttft * 1e3, snapshot.mean_tpot * 1e3]],
    )
    return f"live serving summary\n{table}"


def format_fleet_breakdown(stats: Sequence[dict]) -> str:
    """Render a fleet's per-replica breakdown as an aligned table.

    Args:
        stats: :meth:`~repro.sim.fleet.FleetEngine.replica_stats`
            records -- one row per engine generation (slot, lifecycle
            state, request counters, running latency means).

    Raises:
        ConfigError: on an empty breakdown (a fleet always has at
            least one replica, so nothing-to-render is a caller bug).
    """
    if not stats:
        raise ConfigError("fleet breakdown needs at least one replica")
    table = format_table(
        ("slot", "state", "offered", "completed", "in flight", "QPS",
         "mean TTFT (ms)", "mean TPOT (ms)", "schedule"),
        [[row["slot"], row["state"], row["offered"], row["completed"],
          row["in_flight"], row["throughput"], row["mean_ttft"] * 1e3,
          row["mean_tpot"] * 1e3, row["schedule"]]
         for row in stats],
    )
    return f"per-replica breakdown\n{table}"


def format_scaling_timeline(events: Sequence[dict],
                            replica_seconds: Optional[float] = None) -> str:
    """Render an autoscaler's scaling-event timeline as a table.

    Args:
        events: :meth:`~repro.sim.autoscale.Autoscaler.timeline`
            rows -- one dict per size-changing decision (time, action,
            slots, before/after counts, reason).
        replica_seconds: Optional integrated replica-seconds to
            append as a cost footer.

    A controller that never scaled is a legitimate outcome, so an
    empty timeline renders as a one-line note instead of raising.
    """
    if not events:
        lines = ["scaling timeline: no scaling events"]
    else:
        table = format_table(
            ("sim time (s)", "action", "slots", "replicas", "reason"),
            [[event["time"], event["action"],
              "+".join(str(slot) for slot in event["slots"]),
              f"{event['replicas_before']}->{event['replicas_after']}",
              event["reason"]]
             for event in events],
        )
        lines = [f"scaling timeline ({len(events)} event(s))", table]
    if replica_seconds is not None:
        lines.append(f"replica-seconds: {replica_seconds:.1f}")
    return "\n".join(lines)


def format_serving_report(report) -> str:
    """Render a :class:`~repro.sim.ServingReport` as aligned tables.

    Sections: a one-line header, latency percentiles, SLO attainment,
    the per-stage queueing breakdown and resource utilization -- the
    printable form behind ``repro replay``.
    """
    lines: List[str] = [
        f"scenario {report.scenario}: {report.completed}/{report.offered} "
        f"requests completed over {report.duration:.2f}s "
        f"({report.throughput:.1f} QPS)"
    ]
    lines.append("")
    lines.append(format_table(
        ("metric", "mean", "p50", "p95", "p99"),
        [["TTFT (ms)"] + [report.ttft[key] * 1e3
                          for key in ("mean", "p50", "p95", "p99")],
         ["TPOT (ms)"] + [report.tpot[key] * 1e3
                          for key in ("mean", "p50", "p95", "p99")]],
    ))
    slo_rows = []
    for name, target in (("TTFT", report.slo.ttft),
                         ("TPOT", report.slo.tpot)):
        slo_rows.append([
            name,
            "-" if target is None else f"{target * 1e3:.4g} ms",
            f"{100 * report.slo_attainment[name.lower()]:.1f}%",
        ])
    slo_rows.append(["joint", "-",
                     f"{100 * report.slo_attainment['joint']:.1f}%"])
    lines.append("")
    lines.append(format_table(("SLO", "target", "attainment"), slo_rows))
    if report.queueing:
        lines.append("")
        lines.append(format_table(
            ("stage", "mean wait (ms)", "p95 wait (ms)", "max wait (ms)"),
            [[stage, stats["mean_wait"] * 1e3, stats["p95_wait"] * 1e3,
              stats["max_wait"] * 1e3]
             # Queueing rows follow the report's pipeline-stage order,
             # which is the deterministic execution order -- sorting
             # alphabetically would scramble the dataflow story.
             for stage, stats in report.queueing.items()],  # simlint: allow[unsorted-dict-iteration-in-reporting]
        ))
    if report.tiers:
        lines.append("")
        lines.append(format_table(
            ("tier", "users", "completed", "joint SLO", "p95 TTFT (ms)",
             "p95 TPOT (ms)", "worst-user p95 TTFT (ms)"),
            [[tier, stats["users"],
              f"{stats['completed']}/{stats['offered']}",
              f"{100 * stats['slo_attainment']['joint']:.1f}%",
              stats["ttft_p95"] * 1e3, stats["tpot_p95"] * 1e3,
              stats["worst_user_p95_ttft"] * 1e3]
             for tier, stats in sorted(report.tiers.items())],
        ))
    if report.fairness:
        lines.append("")
        lines.append(
            f"fairness: {report.fairness['users']:.0f} user(s), "
            f"Jain index over per-user completions "
            f"{report.fairness['jain_completions']:.3f}")
    if report.utilization:
        busiest = sorted(report.utilization.items(),
                         key=lambda item: item[1], reverse=True)
        lines.append("")
        lines.append("utilization: " + "  ".join(
            f"{name}={100 * value:.0f}%" for name, value in busiest))
    return "\n".join(lines)


def format_whatif_table(result) -> str:
    """Render a :class:`~repro.rago.whatif.WhatIfResult` as the
    capacity-planning Pareto table.

    One row per grid cell -- policy knobs, SLO attainment, p95 TTFT
    and the chip-seconds cost axis -- with frontier members starred in
    the ``pareto`` column and infeasible cells carrying their error in
    place of metrics. A footer summarizes the frontier and cache hits.
    """
    rows = []
    for row in result.rows:
        if row["error"] is not None:
            metric_cells = ["-", "-", "-", "-", row["error"]]
        else:
            metric_cells = [row["qps"],
                            f"{100 * row['attainment']:.1f}%",
                            row["p95_ttft"] * 1e3,
                            row["chip_seconds"],
                            "*" if row["pareto"] else ""]
        rows.append([
            row["schedule"],
            "auto" if row["replicas"] is None else row["replicas"],
            row["routing"] or "-",
            row["autoscale"] or "-",
        ] + metric_cells)
    table = format_table(
        ("schedule", "replicas", "routing", "autoscale", "QPS",
         "attainment", "p95 TTFT (ms)", "chip-seconds", "pareto"),
        rows, title="what-if policy grid")
    frontier = result.frontier()
    footer = (f"{len(result.cells)} cell(s): "
              f"{len(result.ok_cells)} ok, "
              f"{len(result.errors)} infeasible, "
              f"{result.cache_hits} cached; "
              f"frontier {len(frontier)} cell(s)")
    return f"{table}\n{footer}"


def format_worker_utilization(workers: Sequence[dict]) -> str:
    """Render a backend's per-worker utilization records as a table.

    Args:
        workers: ``BackendRun.workers`` records (``worker``, ``cells``,
            ``duplicates``, ``requeued``).

    A serial or fully-memoized run has no worker records; that renders
    as a one-line note instead of raising.
    """
    if not workers:
        return "worker utilization: no workers ran"
    table = format_table(
        ("worker", "cells", "duplicates", "requeued"),
        [[row["worker"], row["cells"], row["duplicates"],
          row["requeued"]] for row in workers],
    )
    return f"worker utilization\n{table}"


def format_findings(findings: Sequence[object],
                    new_count: Optional[int] = None) -> str:
    """Render simlint findings as an aligned table.

    Args:
        findings: :class:`~repro.analysis.Finding` records, already
            sorted by the linter (path, line, rule).
        new_count: When a baseline was diffed, how many of the
            findings are *new*; annotates the summary footer.

    A clean tree renders as a one-line note instead of raising -- zero
    findings is the linter's success state, not a degenerate input.
    """
    if not findings:
        return "simlint: no findings"
    table = format_table(
        ("rule", "severity", "location", "message"),
        [[finding.rule_id, finding.severity, finding.location,
          finding.message] for finding in findings],
    )
    summary = f"{len(findings)} finding(s)"
    if new_count is not None:
        summary += f", {new_count} new vs baseline"
    return f"simlint findings\n{table}\n{summary}"


def format_explanations(findings: Sequence[object],
                        rule_id: str) -> str:
    """Render the evidence chains behind one rule's findings
    (``repro lint --explain <rule>``).

    Each finding prints as its location + message followed by one
    indented line per witness-chain step (``path:line: who -> what``);
    rules without recorded evidence render a placeholder note so
    ``--explain`` is meaningful for the syntactic rules too.
    """
    relevant = [finding for finding in findings
                if finding.rule_id == rule_id]
    if not relevant:
        return f"--explain {rule_id}: no findings from this rule"
    lines = [f"evidence for {rule_id} "
             f"({len(relevant)} finding(s))"]
    for finding in relevant:
        lines.append(f"* {finding.location}: {finding.message}")
        if finding.evidence:
            lines.extend(f"    {step}" for step in finding.evidence)
        else:
            lines.append("    (single-site finding; the location "
                         "above is the whole evidence)")
    return "\n".join(lines)
