"""Plain-text table formatting for benchmark output.

The benches regenerate the paper's tables and figures as printed rows;
this keeps the harness dependency-free and diff-friendly.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: Column names.
        rows: Row values; each must match the header count. Floats are
            rendered with four significant digits.
        title: Optional title line.

    Raises:
        ConfigError: on ragged rows.
    """
    if not headers:
        raise ConfigError("need at least one column")
    rendered: List[List[str]] = [[_cell(value) for value in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row {row!r} has {len(row)} cells; expected {len(headers)}"
            )
        rendered.append([_cell(value) for value in row])
    widths = [max(len(line[col]) for line in rendered)
              for col in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    for index, line in enumerate(rendered):
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(line, widths)))
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
