"""Experiment registry: one entry per paper table/figure.

Each experiment is a callable returning an
:class:`~repro.experiments.base.ExperimentOutput`; the registry gives the
benchmarks, tests and documentation a single source of truth for what can
be regenerated and how.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class Experiment:
    """A regenerable paper artifact.

    Attributes:
        exp_id: Paper identifier ("fig5", "table4", ...).
        title: What the artifact shows.
        module: Dotted module path exposing a ``run(fast=True)`` callable.
        paper_claim: The qualitative result the reproduction must match.
    """

    exp_id: str
    title: str
    module: str
    paper_claim: str

    def runner(self) -> Callable:
        """Import and return the experiment's ``run`` function."""
        return importlib.import_module(self.module).run


_ENTRIES: Tuple[Experiment, ...] = (
    Experiment("table2", "XPU generation specifications",
               "repro.experiments.table2",
               "three XPU generations with published spec numbers"),
    Experiment("fig5", "RAG vs LLM-only QPS/chip-TTFT Pareto",
               "repro.experiments.fig05",
               "RAG 8B beats LLM-only 70B QPS/chip ~1.5x; RAG 1B ~ RAG 8B"),
    Experiment("fig6", "Hyperscale retrieval: query-count sweep + breakdown",
               "repro.experiments.fig06",
               "retrieval dominates 8B and halves QPS per query doubling; "
               "70B inference-bound until ~4 queries"),
    Experiment("fig7", "Retrieval share vs XPU gen / scan fraction / lengths",
               "repro.experiments.fig07",
               "retrieval share grows with better XPUs and scan fraction, "
               "shrinks with longer sequences (86%->31% for 8B)"),
    Experiment("fig8", "Long-context performance and breakdown",
               "repro.experiments.fig08",
               "encoding dominates at >=1M tokens; retrieval <1%"),
    Experiment("fig9", "Iterative retrieval TPOT sensitivity",
               "repro.experiments.fig09",
               "TPOT grows with retrieval frequency and decode batch; "
               "optimal iterative batch depends on decode batch"),
    Experiment("fig10", "Decode idleness from batched iterative queries",
               "repro.experiments.fig10",
               "normalized decode latency peaks ~2.8-3x when iterative "
               "batch ~ decode batch"),
    Experiment("fig11", "Rewriter/reranker impact",
               "repro.experiments.fig11",
               "rewriter raises TTFT ~2.4x; QPS/chip barely moves"),
    Experiment("table4", "RAGO vs baseline schedules in Case II",
               "repro.experiments.table4",
               "RAGO max-QPS schedule allocates most chips to encode and "
               "beats the baseline ~1.7x"),
    Experiment("fig15", "RAGO vs LLM-extension Pareto (C-II, C-IV)",
               "repro.experiments.fig15",
               "1.7x (C-II) and 1.5x (C-IV) max QPS/chip for RAGO"),
    Experiment("fig16", "Pareto composition across plans",
               "repro.experiments.fig16",
               "global frontier is built from multiple placement/"
               "allocation plans"),
    Experiment("fig17", "Task placement sensitivity",
               "repro.experiments.fig17",
               "placement barely matters in C-II (~2%), hybrid wins up to "
               "1.5x in C-IV"),
    Experiment("fig18", "Resource allocation sensitivity",
               "repro.experiments.fig18",
               "QPS/chip spans ~50-65x across allocation plans"),
    Experiment("fig19", "Micro-batching TTFT reduction",
               "repro.experiments.fig19",
               "up to ~50% TTFT reduction in C-II; C-I needs batch >=8; "
               "C-IV moderate (~25%)"),
)

EXPERIMENTS: Dict[str, Experiment] = {entry.exp_id: entry
                                      for entry in _ENTRIES}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by paper identifier.

    Raises:
        ConfigError: for unknown identifiers.
    """
    key = exp_id.strip().lower()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigError(f"unknown experiment {exp_id!r}; known: {known}")
    return EXPERIMENTS[key]
