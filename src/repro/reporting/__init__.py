"""Reporting: text tables, printable figure series, and the experiment
registry that maps every paper table/figure to a runnable generator."""

from repro.reporting.tables import (
    format_explanations,
    format_findings,
    format_fleet_breakdown,
    format_live_summary,
    format_scaling_timeline,
    format_serving_report,
    format_table,
    format_whatif_table,
    format_worker_utilization,
)
from repro.reporting.figures import format_heatmap, format_series
from repro.reporting.ascii_plot import ascii_scatter
from repro.reporting.experiments import EXPERIMENTS, Experiment, get_experiment

__all__ = [
    "format_table",
    "format_serving_report",
    "format_live_summary",
    "format_fleet_breakdown",
    "format_scaling_timeline",
    "format_explanations",
    "format_findings",
    "format_whatif_table",
    "format_worker_utilization",
    "format_series",
    "format_heatmap",
    "ascii_scatter",
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
]
