"""Printable figure series: line series and heatmaps as text.

Each paper figure is reproduced as its underlying data series; these
helpers render them in a compact, reviewable form for the bench logs and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigError
from repro.reporting.tables import format_table


def format_series(name: str, x_label: str, y_label: str,
                  series: Mapping[str, Sequence[tuple]]) -> str:
    """Render named (x, y) series as a table.

    Args:
        name: Figure title.
        x_label / y_label: Axis names.
        series: Mapping from series label to a sequence of (x, y) pairs.
    """
    if not series:
        raise ConfigError("need at least one series")
    rows = []
    # Series print in the caller's insertion order: figure legends
    # follow the paper's series ordering, not the alphabet.
    for label, points in series.items():  # simlint: allow[unsorted-dict-iteration-in-reporting]
        for x, y in points:
            rows.append((label, x, y))
    return format_table(("series", x_label, y_label), rows, title=name)


def format_heatmap(name: str, row_label: str, col_label: str,
                   row_keys: Sequence[object], col_keys: Sequence[object],
                   values: Mapping[tuple, float], fmt: str = "{:.2f}",
                   missing: str = "-") -> str:
    """Render a 2-D grid of values as a table.

    Args:
        name: Figure title.
        row_label / col_label: Axis names.
        row_keys / col_keys: Axis tick values, in display order.
        values: ``{(row_key, col_key): value}``; absent cells render as
            ``missing`` (the paper's Fig. 10 grid is triangular).
        fmt: Format string for each cell.
        missing: Placeholder for absent cells.
    """
    if not row_keys or not col_keys:
        raise ConfigError("need at least one row and one column")
    headers = [f"{row_label}\\{col_label}"] + [str(c) for c in col_keys]
    rows = []
    for row_key in row_keys:
        cells: list = [str(row_key)]
        for col_key in col_keys:
            if (row_key, col_key) in values:
                cells.append(fmt.format(values[(row_key, col_key)]))
            else:
                cells.append(missing)
        rows.append(cells)
    return format_table(headers, rows, title=name)
