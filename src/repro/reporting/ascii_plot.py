"""ASCII scatter plots for Pareto frontiers.

Benchmark logs and the CLI are text-only; a coarse scatter still shows a
frontier's shape (where the knee sits, how steep the latency/throughput
trade is) far better than a table alone.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence, Tuple

from repro.errors import ConfigError

#: Glyphs assigned to successive series.
_GLYPHS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int,
           log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(int(position * cells), cells - 1)


def ascii_scatter(series: Mapping[str, Sequence[Tuple[float, float]]],
                  width: int = 60, height: int = 16,
                  x_label: str = "x", y_label: str = "y",
                  log_x: bool = False, log_y: bool = False) -> str:
    """Render named (x, y) point series as an ASCII scatter plot.

    Args:
        series: Mapping from series label to points; each series gets
            its own glyph (cycled beyond eight series).
        width / height: Plot area in character cells.
        x_label / y_label: Axis captions.
        log_x / log_y: Logarithmic axes (all values must be positive).

    Raises:
        ConfigError: on empty input, non-positive dimensions, or
            non-positive values on a log axis.
    """
    if width < 10 or height < 4:
        raise ConfigError("plot area must be at least 10x4")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ConfigError("need at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if (log_x and min(xs) <= 0) or (log_y and min(ys) <= 0):
        raise ConfigError("log axes require positive values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for index, (label, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width, log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log_y)
            grid[row][col] = glyph

    lines: List[str] = []
    lines.append(f"{y_label} [{y_lo:.3g} .. {y_hi:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_lo:.3g} .. {x_hi:.3g}]")
    legend = "  ".join(f"{_GLYPHS[i % len(_GLYPHS)]}={label}"
                       for i, label in enumerate(series))
    lines.append(f" {legend}")
    return "\n".join(lines)
