"""IVF-PQ: inverted-file index with product-quantized residual scan.

The functional counterpart of the paper's retrieval substrate ("the IVF-PQ
algorithm ... is one of the most widely used approaches for large-scale
vector search in RAG", §2). Vectors are partitioned into ``nlist``
clusters; a query scans the ``nprobe`` closest clusters using PQ
asymmetric distances, trading recall for scanned bytes exactly as the
analytical model's ``p_scan`` knob does.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.retrieval.pq import ProductQuantizer, _kmeans


class IVFPQIndex:
    """Inverted-file + product-quantization approximate index.

    Args:
        nlist: Number of coarse clusters (the paper's tree uses a 4K
            fanout; laptop-scale tests use far fewer).
        quantizer: Product quantizer for the stored codes; a default 8-byte
            PQ is created when omitted.
        seed: RNG seed for coarse clustering.
    """

    def __init__(self, nlist: int = 64,
                 quantizer: Optional[ProductQuantizer] = None,
                 seed: int = 0) -> None:
        if nlist <= 0:
            raise ConfigError("nlist must be positive")
        self._nlist = nlist
        self._pq = quantizer or ProductQuantizer(seed=seed)
        self._seed = seed
        self._centroids: Optional[np.ndarray] = None
        self._lists: List[np.ndarray] = []
        self._codes: List[np.ndarray] = []
        self._size = 0

    @property
    def nlist(self) -> int:
        """Coarse cluster count."""
        return self._nlist

    @property
    def size(self) -> int:
        """Indexed vector count."""
        return self._size

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._centroids is not None

    def build(self, vectors: np.ndarray) -> "IVFPQIndex":
        """Train the coarse quantizer and PQ, then index all vectors."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[0] < self._nlist:
            raise ConfigError(
                f"need at least nlist={self._nlist} training vectors"
            )
        rng = np.random.default_rng(self._seed)
        self._centroids = _kmeans(vectors, self._nlist, iterations=8, rng=rng)
        if not self._pq.is_trained:
            self._pq.train(vectors)
        assignment = self._assign(vectors)
        self._lists = []
        self._codes = []
        for cluster in range(self._nlist):
            member_ids = np.nonzero(assignment == cluster)[0]
            self._lists.append(member_ids.astype(np.int64))
            self._codes.append(self._pq.encode(vectors[member_ids])
                               if len(member_ids) else
                               np.empty((0, self._pq.num_subspaces),
                                        dtype=np.uint8))
        self._size = vectors.shape[0]
        return self

    def _assign(self, vectors: np.ndarray) -> np.ndarray:
        centroids = self._require_built()
        dots = vectors @ centroids.T
        norms = (centroids**2).sum(axis=1)
        return np.argmin(norms[None, :] - 2.0 * dots, axis=1)

    def _require_built(self) -> np.ndarray:
        if self._centroids is None:
            raise ConfigError("index is not built yet")
        return self._centroids

    def scanned_fraction(self, nprobe: int) -> float:
        """Fraction of database vectors a search touches (the paper's
        ``p_scan``), estimated from actual list sizes."""
        self._require_built()
        if self._size == 0:
            return 0.0
        sizes = sorted((len(ids) for ids in self._lists), reverse=True)
        nprobe = min(max(nprobe, 1), self._nlist)
        mean_probe = sum(sizes) / self._nlist * nprobe
        return min(mean_probe / self._size, 1.0)

    def search(self, queries: np.ndarray, k: int,
               nprobe: int = 8) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-k search.

        Args:
            queries: (q, dim) or (dim,) array.
            k: Neighbors per query.
            nprobe: Coarse clusters scanned per query.

        Returns:
            ``(distances, indices)`` of shape (q, k); missing slots (fewer
            than k candidates) hold ``inf`` / ``-1``.
        """
        if k <= 0:
            raise ConfigError("k must be positive")
        if nprobe <= 0:
            raise ConfigError("nprobe must be positive")
        centroids = self._require_built()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nprobe = min(nprobe, self._nlist)
        num_queries = queries.shape[0]
        out_dist = np.full((num_queries, k), np.inf, dtype=np.float32)
        out_idx = np.full((num_queries, k), -1, dtype=np.int64)
        cdots = queries @ centroids.T
        cnorms = (centroids**2).sum(axis=1)
        coarse = cnorms[None, :] - 2.0 * cdots
        for qi in range(num_queries):
            probe = np.argpartition(coarse[qi], nprobe - 1)[:nprobe]
            candidate_ids = []
            candidate_dists = []
            for cluster in probe:
                ids = self._lists[cluster]
                if not len(ids):
                    continue
                dists = self._pq.adc_scan(self._codes[cluster], queries[qi])
                candidate_ids.append(ids)
                candidate_dists.append(dists)
            if not candidate_ids:
                continue
            ids = np.concatenate(candidate_ids)
            dists = np.concatenate(candidate_dists)
            take = min(k, len(ids))
            best = np.argpartition(dists, take - 1)[:take]
            order = np.argsort(dists[best])
            chosen = best[order]
            out_dist[qi, :take] = dists[chosen]
            out_idx[qi, :take] = ids[chosen]
        return out_dist, out_idx
