"""Distributed sharded retrieval across CPU servers.

"For large databases requiring distributed search across multiple servers,
we assume each server holds a shard of the dataset with independent
indexes. Queries are routed to all servers, and results are aggregated.
The workload is balanced across servers, with negligible overhead for
broadcast and gather operations." (§4b)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigError
from repro.hardware.cpu import CPUServerSpec
from repro.retrieval.scann_model import DatabaseConfig, ScaNNPerfModel


@dataclass(frozen=True)
class ShardedSearchPerf:
    """Performance of a distributed retrieval configuration.

    Attributes:
        latency: Seconds for a batch of queries (all shards in parallel).
        qps: Query vectors per second the shard ensemble sustains.
        num_servers: Servers the configuration occupies.
        batch: Query batch size evaluated.
    """

    latency: float
    qps: float
    num_servers: int
    batch: int


class DistributedRetrievalModel:
    """Retrieval cost model over a sharded database."""

    def __init__(self, database: DatabaseConfig, server: CPUServerSpec,
                 base_latency: float = 1e-4) -> None:
        self._database = database
        self._server = server
        self._perf = ScaNNPerfModel(server, base_latency)

    @property
    def database(self) -> DatabaseConfig:
        """The sharded database."""
        return self._database

    @property
    def server(self) -> CPUServerSpec:
        """Per-shard host spec."""
        return self._server

    def min_servers(self) -> int:
        """Fewest servers whose DRAM holds the quantized database.

        Case I's 5.6 TiB database needs 16 x 384 GB servers (§4).
        """
        return max(1, math.ceil(self._database.total_bytes
                                / self._server.memory_bytes))

    def validate_servers(self, num_servers: int) -> None:
        """Raise unless ``num_servers`` can hold the database."""
        if num_servers <= 0:
            raise ConfigError("num_servers must be positive")
        needed = self.min_servers()
        if num_servers < needed:
            raise CapacityError(
                f"database of {self._database.total_bytes / 1e12:.2f} TB "
                f"needs >= {needed} servers, got {num_servers}"
            )

    def bytes_per_query_per_server(self, num_servers: int) -> float:
        """Scanned bytes each shard contributes to one query."""
        self.validate_servers(num_servers)
        return self._database.bytes_per_query / num_servers

    def search_perf(self, batch: int, num_servers: int) -> ShardedSearchPerf:
        """Latency/QPS for a query batch over ``num_servers`` shards.

        Every query is broadcast to all shards; each shard scans its slice
        of the probed lists, so per-server bytes shrink linearly with the
        server count while every server sees the full query batch.
        """
        per_server_bytes = self.bytes_per_query_per_server(num_servers)
        latency = self._perf.batch_latency(per_server_bytes, batch)
        return ShardedSearchPerf(
            latency=latency,
            qps=batch / latency,
            num_servers=num_servers,
            batch=batch,
        )
