"""Product quantization (PQ) for approximate nearest-neighbor search.

PQ (Jegou et al.) splits each D-dimensional vector into M subvectors and
quantizes each against a 2^bits-entry codebook, so one byte can represent
several dimensions -- the memory efficiency that makes hyperscale RAG
databases feasible (§2: 64B vectors, 96 bytes each). Search uses
asymmetric distance computation (ADC): per-query lookup tables turn each
code byte into a partial distance.

This is a real, working implementation (train / encode / decode / scan)
used by the examples, recall tests and the calibration harness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError


def _kmeans(data: np.ndarray, num_clusters: int, iterations: int,
            rng: np.random.Generator) -> np.ndarray:
    """Lightweight Lloyd's k-means returning the centroid matrix."""
    num_points = data.shape[0]
    if num_points < num_clusters:
        raise ConfigError(
            f"k-means needs at least {num_clusters} points, got {num_points}"
        )
    choice = rng.choice(num_points, size=num_clusters, replace=False)
    centroids = data[choice].astype(np.float32).copy()
    for _ in range(iterations):
        # Squared distances via the expansion ||x - c||^2 = ||x||^2 +
        # ||c||^2 - 2 x.c; the ||x||^2 term is constant per row for argmin.
        dots = data @ centroids.T
        norms = (centroids**2).sum(axis=1)
        assignment = np.argmin(norms[None, :] - 2.0 * dots, axis=1)
        for cluster in range(num_clusters):
            members = data[assignment == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return centroids


class ProductQuantizer:
    """Trainable product quantizer with ADC scanning.

    Args:
        num_subspaces: Number of code bytes per vector (M).
        bits: Bits per code (8 -> 256 centroids per subspace).
        train_iterations: k-means iterations per subspace.
        seed: RNG seed for reproducible codebooks.
    """

    def __init__(self, num_subspaces: int = 8, bits: int = 8,
                 train_iterations: int = 8, seed: int = 0) -> None:
        if num_subspaces <= 0:
            raise ConfigError("num_subspaces must be positive")
        if not 1 <= bits <= 8:
            raise ConfigError("bits must be in [1, 8]")
        if train_iterations <= 0:
            raise ConfigError("train_iterations must be positive")
        self._m = num_subspaces
        self._ksub = 1 << bits
        self._iterations = train_iterations
        self._seed = seed
        self._codebooks: Optional[np.ndarray] = None  # (M, ksub, dsub)
        self._dim = 0

    @property
    def num_subspaces(self) -> int:
        """Code bytes per vector."""
        return self._m

    @property
    def codes_per_subspace(self) -> int:
        """Centroids per subspace codebook."""
        return self._ksub

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has been called."""
        return self._codebooks is not None

    @property
    def dim(self) -> int:
        """Vector dimensionality the quantizer was trained on."""
        return self._dim

    def _require_trained(self) -> np.ndarray:
        if self._codebooks is None:
            raise ConfigError("ProductQuantizer is not trained yet")
        return self._codebooks

    def _split(self, vectors: np.ndarray) -> np.ndarray:
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ConfigError(
                f"expected (n, {self._dim}) vectors, got {vectors.shape}"
            )
        n = vectors.shape[0]
        return vectors.reshape(n, self._m, self._dim // self._m)

    def train(self, vectors: np.ndarray) -> "ProductQuantizer":
        """Learn per-subspace codebooks from training vectors."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ConfigError("training vectors must be 2-D")
        dim = vectors.shape[1]
        if dim % self._m != 0:
            raise ConfigError(
                f"dimensionality {dim} not divisible by {self._m} subspaces"
            )
        self._dim = dim
        dsub = dim // self._m
        rng = np.random.default_rng(self._seed)
        codebooks = np.empty((self._m, self._ksub, dsub), dtype=np.float32)
        for sub in range(self._m):
            block = vectors[:, sub * dsub:(sub + 1) * dsub]
            codebooks[sub] = _kmeans(block, self._ksub, self._iterations, rng)
        self._codebooks = codebooks
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize vectors to uint8 codes of shape (n, M)."""
        codebooks = self._require_trained()
        blocks = self._split(np.asarray(vectors, dtype=np.float32))
        n = blocks.shape[0]
        codes = np.empty((n, self._m), dtype=np.uint8)
        for sub in range(self._m):
            book = codebooks[sub]
            dots = blocks[:, sub, :] @ book.T
            norms = (book**2).sum(axis=1)
            codes[:, sub] = np.argmin(norms[None, :] - 2.0 * dots, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        codebooks = self._require_trained()
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self._m:
            raise ConfigError(f"expected (n, {self._m}) codes")
        parts = [codebooks[sub][codes[:, sub]] for sub in range(self._m)]
        return np.concatenate(parts, axis=1)

    def lookup_table(self, query: np.ndarray) -> np.ndarray:
        """ADC lookup table of squared distances, shape (M, ksub)."""
        codebooks = self._require_trained()
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self._dim:
            raise ConfigError(f"query must have {self._dim} dimensions")
        dsub = self._dim // self._m
        table = np.empty((self._m, self._ksub), dtype=np.float32)
        for sub in range(self._m):
            diff = codebooks[sub] - query[sub * dsub:(sub + 1) * dsub]
            table[sub] = (diff**2).sum(axis=1)
        return table

    def adc_scan(self, codes: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Approximate squared distances from query to every coded vector.

        This is the PQ-code scan whose throughput the paper calibrates
        (18 GB/s per core on ScaNN); the calibration harness times this
        exact routine.
        """
        table = self.lookup_table(query)
        codes = np.asarray(codes)
        total = np.zeros(codes.shape[0], dtype=np.float32)
        for sub in range(self._m):
            total += table[sub][codes[:, sub]]
        return total
