"""Analytical ScaNN retrieval performance model (§3.3, §4b).

The retrieval workload is characterized by the bytes of database vectors
scanned per query:

    B_retrieval ~= N_dbvec * B_vec * P_scan / 100

The search is a sequence of scan operators over a multi-level tree (the
paper uses a three-level tree with 4K fanout for 64B vectors). Each scan
operator's time follows the CPU roofline

    T_op = max(D / P_comp(Q), D / B_mem(D))

with one thread per query and batches parallelized across cores: a single
query is bound by one core's scan rate (18 GB/s calibrated), while large
batches saturate server memory bandwidth -- reproducing the paper's
observations that (a) batch-1 retrieval over 32 servers costs ~10 ms and
(b) shrinking the batch below ~16 stops improving latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.cpu import CPUServerSpec


@dataclass(frozen=True)
class DatabaseConfig:
    """A quantized vector database.

    Attributes:
        num_vectors: Database size N_dbvec (64e9 in Case I).
        dim: Raw vector dimensionality (768 in the paper).
        bytes_per_vector: PQ-compressed size B_vec (96 bytes: 1 byte per
            8 dimensions).
        scan_fraction: P_scan, fraction of database vectors compared per
            query (0.001 default, i.e. 0.1%).
        tree_fanout: Children per node of the balanced search tree
            (4K in the paper: (64e9)^(1/3) ~= 4e3).
        tree_levels: Depth of the tree index (3 in the paper).
    """

    num_vectors: float
    dim: int = 768
    bytes_per_vector: float = 96.0
    scan_fraction: float = 0.001
    tree_fanout: int = 4096
    tree_levels: int = 3

    def __post_init__(self) -> None:
        if self.num_vectors <= 0:
            raise ConfigError("num_vectors must be positive")
        if self.dim <= 0:
            raise ConfigError("dim must be positive")
        if self.bytes_per_vector <= 0:
            raise ConfigError("bytes_per_vector must be positive")
        if not 0 < self.scan_fraction <= 1:
            raise ConfigError("scan_fraction must be in (0, 1]")
        if self.tree_fanout <= 1:
            raise ConfigError("tree_fanout must exceed 1")
        if self.tree_levels <= 0:
            raise ConfigError("tree_levels must be positive")

    @property
    def total_bytes(self) -> float:
        """Quantized database size in bytes (5.6 TiB for Case I)."""
        return self.num_vectors * self.bytes_per_vector

    @property
    def leaf_bytes_per_query(self) -> float:
        """Leaf-level bytes scanned per query (the dominant term)."""
        return self.num_vectors * self.bytes_per_vector * self.scan_fraction

    @property
    def upper_level_bytes_per_query(self) -> float:
        """Bytes scanned in the non-leaf tree levels per query.

        Each traversed level scans one node's fanout of centroid codes;
        negligible next to the leaf scan but modelled for completeness.
        """
        levels_above_leaf = max(self.tree_levels - 1, 0)
        return levels_above_leaf * self.tree_fanout * self.bytes_per_vector

    @property
    def bytes_per_query(self) -> float:
        """Total bytes one query scans across all tree levels."""
        return self.leaf_bytes_per_query + self.upper_level_bytes_per_query

    def with_scan_fraction(self, scan_fraction: float) -> "DatabaseConfig":
        """Copy with a different P_scan (Fig. 7b sweeps this)."""
        return DatabaseConfig(
            num_vectors=self.num_vectors,
            dim=self.dim,
            bytes_per_vector=self.bytes_per_vector,
            scan_fraction=scan_fraction,
            tree_fanout=self.tree_fanout,
            tree_levels=self.tree_levels,
        )


class ScaNNPerfModel:
    """Single-server retrieval roofline.

    Args:
        server: CPU host whose cores/bandwidth execute the scan.
        base_latency: Fixed per-batch overhead in seconds (queue hops,
            top-k merge); small relative to scan time.
    """

    def __init__(self, server: CPUServerSpec,
                 base_latency: float = 1e-4) -> None:
        if base_latency < 0:
            raise ConfigError("base_latency must be non-negative")
        self._server = server
        self._base_latency = base_latency

    @property
    def server(self) -> CPUServerSpec:
        """Host server spec."""
        return self._server

    def batch_latency(self, bytes_per_query: float, batch: int) -> float:
        """Latency to finish a batch of queries on one server.

        One thread per query: with Q <= cores every query scans at the
        per-core rate concurrently; beyond that, queries run in waves.
        Aggregate traffic is capped by effective memory bandwidth.
        """
        if bytes_per_query < 0:
            raise ConfigError("bytes_per_query must be non-negative")
        if batch <= 0:
            raise ConfigError("batch must be positive")
        waves = math.ceil(batch / self._server.cores)
        compute = waves * bytes_per_query / self._server.pq_scan_rate_per_core
        memory = (batch * bytes_per_query
                  / self._server.effective_mem_bandwidth)
        return self._base_latency + max(compute, memory)

    def batch_throughput(self, bytes_per_query: float, batch: int) -> float:
        """Queries per second one server sustains at a batch size."""
        return batch / self.batch_latency(bytes_per_query, batch)
