"""Calibration of the analytical retrieval model from the functional engine.

The paper populates its simulator parameters by benchmarking open-source
ScaNN's PQ-code scan throughput on real hardware (18 GB/s per core on an
AMD EPYC 7R13), then calibrating against production datasets (§4b). This
module replicates the *methodology* with the in-repo functional PQ engine:
time the ADC scan over synthetic codes, derive bytes-per-second per core,
and produce a :class:`~repro.hardware.CPUServerSpec` with the measured
rate installed.

The measured number describes the machine running this code (a numpy
scan will not hit 18 GB/s); models default to the paper's published
calibration so reproduction results match the paper's regime, while the
harness demonstrates and tests the calibration path end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError, ConfigError
from repro.hardware.cpu import CPUServerSpec
from repro.retrieval.pq import ProductQuantizer


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a scan-throughput calibration run.

    Attributes:
        bytes_per_second: Measured single-thread PQ scan rate.
        scanned_bytes: Total code bytes scanned during the measurement.
        elapsed: Wall-clock seconds of scanning.
        num_queries: Queries timed.
    """

    bytes_per_second: float
    scanned_bytes: float
    elapsed: float
    num_queries: int

    def as_server_spec(self, base: CPUServerSpec,
                       mem_utilization: float = 0.8) -> CPUServerSpec:
        """Install the measured rate into a server specification."""
        return base.recalibrated(
            pq_scan_rate_per_core=self.bytes_per_second,
            mem_utilization=mem_utilization,
        )


def calibrate_scan_rate(num_vectors: int = 20_000, dim: int = 64,
                        num_queries: int = 8, repeats: int = 3,
                        seed: int = 0) -> CalibrationResult:
    """Measure the functional engine's single-thread ADC scan throughput.

    Mirrors the paper's microbenchmark: train a PQ on synthetic data,
    encode a corpus, then time repeated full scans.

    Args:
        num_vectors: Corpus size to scan.
        dim: Vector dimensionality (kept small; only bytes/s matter).
        num_queries: Distinct queries timed.
        repeats: Scan repetitions per query (reduces timer noise).
        seed: RNG seed.

    Raises:
        CalibrationError: if the measurement produced a non-positive rate.
        ConfigError: on nonsensical arguments.
    """
    if num_vectors <= 0 or num_queries <= 0 or repeats <= 0:
        raise ConfigError("calibration sizes must be positive")
    rng = np.random.default_rng(seed)
    corpus = rng.standard_normal((num_vectors, dim)).astype(np.float32)
    queries = rng.standard_normal((num_queries, dim)).astype(np.float32)
    pq = ProductQuantizer(num_subspaces=8, train_iterations=4, seed=seed)
    pq.train(corpus)
    codes = pq.encode(corpus)
    bytes_per_scan = codes.nbytes

    # Warm-up pass so one-time costs (cache fill) stay out of the timing.
    pq.adc_scan(codes, queries[0])

    start = time.perf_counter()
    for query in queries:
        for _ in range(repeats):
            pq.adc_scan(codes, query)
    elapsed = time.perf_counter() - start

    total_bytes = float(bytes_per_scan) * num_queries * repeats
    if elapsed <= 0 or total_bytes <= 0:
        raise CalibrationError("calibration produced no measurable work")
    rate = total_bytes / elapsed
    if rate <= 0:
        raise CalibrationError(f"non-positive scan rate: {rate}")
    return CalibrationResult(
        bytes_per_second=rate,
        scanned_bytes=total_bytes,
        elapsed=elapsed,
        num_queries=num_queries * repeats,
    )
