"""Exact k-nearest-neighbor search.

Used for (a) ground truth in recall tests and (b) the long-context
paradigm (Case II), where the paper performs brute-force kNN because the
database is tiny (1K-100K vectors) and index construction would dominate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError


class BruteForceIndex:
    """Exact kNN over an in-memory matrix using L2 distance."""

    def __init__(self, vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ConfigError("vectors must be a non-empty 2-D array")
        self._vectors = vectors
        self._norms = (vectors**2).sum(axis=1)

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return self._vectors.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._vectors.shape[1]

    def search(self, queries: np.ndarray,
               k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact top-k neighbors for each query.

        Args:
            queries: Array of shape (q, dim) or (dim,).
            k: Neighbors to return; capped at the index size.

        Returns:
            ``(distances, indices)``, each of shape (q, k), distances in
            ascending order (squared L2).
        """
        if k <= 0:
            raise ConfigError("k must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if queries.shape[1] != self.dim:
            raise ConfigError(
                f"queries have dim {queries.shape[1]}, index has {self.dim}"
            )
        k = min(k, self.size)
        # ||x - q||^2 = ||x||^2 - 2 q.x + ||q||^2; the last term does not
        # change the ranking but is added to return true distances.
        dots = queries @ self._vectors.T
        sq = self._norms[None, :] - 2.0 * dots
        sq += (queries**2).sum(axis=1, keepdims=True)
        idx = np.argpartition(sq, k - 1, axis=1)[:, :k]
        part = np.take_along_axis(sq, idx, axis=1)
        order = np.argsort(part, axis=1)
        indices = np.take_along_axis(idx, order, axis=1)
        distances = np.take_along_axis(part, order, axis=1)
        return np.maximum(distances, 0.0), indices
