"""Retrieval-configuration tuning: minimum scan fraction for a recall
target.

§3.3: "P_scan is determined by evaluating a set of sample queries and
analyzing the relationship between P_scan and retrieval quality measured
by recall ... The minimum value of P_scan that satisfies the required
retrieval quality is then selected." This module implements that tuning
loop against the functional IVF-PQ engine and reports the resulting
``p_scan`` for the analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.retrieval.bruteforce import BruteForceIndex
from repro.retrieval.ivf import IVFPQIndex


@dataclass(frozen=True)
class TuningPoint:
    """One (nprobe, scan fraction, recall) measurement."""

    nprobe: int
    scan_fraction: float
    recall: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a scan-fraction tuning sweep.

    Attributes:
        points: Measurements in ascending nprobe order.
        selected: The cheapest point meeting the recall target, or None
            when even a full scan misses it (PQ quantization floor).
        target_recall: The requested recall.
    """

    points: List[TuningPoint]
    selected: "TuningPoint | None"
    target_recall: float


def tune_scan_fraction(index: IVFPQIndex, corpus: np.ndarray,
                       queries: np.ndarray, k: int = 10,
                       target_recall: float = 0.8,
                       nprobe_candidates: Sequence[int] = (1, 2, 4, 8, 16,
                                                           32, 64)) -> TuningResult:
    """Find the smallest scan fraction meeting a recall target.

    Args:
        index: A built IVF-PQ index over ``corpus``.
        corpus: The indexed vectors (for brute-force ground truth).
        queries: Sample query vectors (the paper's tuning queries).
        k: Neighbors per query for recall@k.
        target_recall: Required recall in (0, 1].
        nprobe_candidates: Probe counts to sweep (ascending).

    Raises:
        ConfigError: on invalid arguments or an unbuilt index.
    """
    if not 0 < target_recall <= 1:
        raise ConfigError("target_recall must be in (0, 1]")
    if not index.is_trained:
        raise ConfigError("index must be built before tuning")
    if len(nprobe_candidates) == 0:
        raise ConfigError("need at least one nprobe candidate")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))

    exact = BruteForceIndex(corpus)
    _, truth = exact.search(queries, k=k)

    points: List[TuningPoint] = []
    selected = None
    for nprobe in sorted(set(int(n) for n in nprobe_candidates)):
        if nprobe <= 0:
            raise ConfigError("nprobe candidates must be positive")
        _, approx = index.search(queries, k=k, nprobe=nprobe)
        hits = sum(len(set(a_row) & set(t_row))
                   for a_row, t_row in zip(approx, truth))
        recall = hits / float(truth.size)
        point = TuningPoint(nprobe=nprobe,
                            scan_fraction=index.scanned_fraction(nprobe),
                            recall=recall)
        points.append(point)
        if selected is None and recall >= target_recall:
            selected = point
    return TuningResult(points=points, selected=selected,
                        target_recall=target_recall)
