"""Vector-search substrate.

Two complementary pieces, mirroring the paper's methodology (§4b):

1. A **functional** IVF-PQ engine (:mod:`repro.retrieval.pq`,
   :mod:`repro.retrieval.ivf`, :mod:`repro.retrieval.bruteforce`) -- a real,
   numpy-based approximate-nearest-neighbor implementation used by the
   examples, the recall tests and the calibration harness.
2. An **analytical** ScaNN-style performance model
   (:mod:`repro.retrieval.scann_model`, :mod:`repro.retrieval.distributed`)
   that predicts retrieval latency/throughput from bytes scanned through a
   per-core-throughput + memory-bandwidth roofline, for databases far too
   large to instantiate (64 billion vectors).

:mod:`repro.retrieval.calibration` connects them: it measures the
functional engine's PQ scan rate to populate the analytical model's
parameters, replicating the paper's two-step calibration.
"""

from repro.retrieval.pq import ProductQuantizer
from repro.retrieval.ivf import IVFPQIndex
from repro.retrieval.tree import TreePQIndex
from repro.retrieval.bruteforce import BruteForceIndex
from repro.retrieval.scann_model import DatabaseConfig, ScaNNPerfModel
from repro.retrieval.distributed import DistributedRetrievalModel
from repro.retrieval.simulator import RetrievalPerf, RetrievalSimulator
from repro.retrieval.calibration import CalibrationResult, calibrate_scan_rate
from repro.retrieval.tuning import TuningPoint, TuningResult, tune_scan_fraction

__all__ = [
    "TuningPoint",
    "TuningResult",
    "tune_scan_fraction",
    "ProductQuantizer",
    "IVFPQIndex",
    "TreePQIndex",
    "BruteForceIndex",
    "DatabaseConfig",
    "ScaNNPerfModel",
    "DistributedRetrievalModel",
    "RetrievalPerf",
    "RetrievalSimulator",
    "CalibrationResult",
    "calibrate_scan_rate",
]
