"""Two-level tree index: the functional counterpart of the paper's
multi-level ScaNN structure.

The paper's 64-billion-vector deployment uses a balanced three-level
tree with a 4K fanout (§4: ``(64e9)^(1/3) = 4e3``); search scans one
node's children per level and PQ codes at the leaves. This module
implements the same structure at laptop scale with two levels of
k-means clustering above the PQ-coded leaves: queries descend the top
level to pick branches, the second level to pick leaves, then ADC-scan
the selected leaves.

Relative to the flat :class:`~repro.retrieval.IVFPQIndex`, the tree
scans far fewer *centroids* per query on large corpora -- the reason the
paper's analytical model can treat upper levels as negligible.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.retrieval.pq import ProductQuantizer, _kmeans


def _nearest(matrix: np.ndarray, queries: np.ndarray) -> np.ndarray:
    dots = queries @ matrix.T
    norms = (matrix**2).sum(axis=1)
    return norms[None, :] - 2.0 * dots


class TreePQIndex:
    """Two-level tree over PQ-coded leaves.

    Args:
        fanout: Children per node; the leaf count is ``fanout**2`` (the
            paper's balanced-tree sizing rule, scaled down).
        quantizer: Product quantizer for leaf codes.
        seed: RNG seed for clustering.
    """

    def __init__(self, fanout: Optional[int] = None,
                 quantizer: Optional[ProductQuantizer] = None,
                 seed: int = 0) -> None:
        if fanout is not None and fanout < 2:
            raise ConfigError("fanout must be at least 2")
        self._fanout = fanout
        self._pq = quantizer or ProductQuantizer(seed=seed)
        self._seed = seed
        self._top: Optional[np.ndarray] = None          # (f, dim)
        self._second: Optional[np.ndarray] = None       # (f*f, dim)
        self._leaf_ids: List[np.ndarray] = []
        self._leaf_codes: List[np.ndarray] = []
        self._size = 0

    @property
    def fanout(self) -> int:
        """Children per node (derived at build time if not given)."""
        if self._fanout is None:
            raise ConfigError("index is not built yet")
        return self._fanout

    @property
    def num_leaves(self) -> int:
        """Leaf node count (fanout squared)."""
        return len(self._leaf_ids)

    @property
    def size(self) -> int:
        """Indexed vector count."""
        return self._size

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._top is not None

    def build(self, vectors: np.ndarray) -> "TreePQIndex":
        """Cluster two levels and PQ-encode every leaf.

        The default fanout follows the paper's balanced sizing:
        ``fanout = ceil(N ** (1/3))`` so leaves hold about ``fanout``
        vectors each.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ConfigError("vectors must be 2-D")
        n = vectors.shape[0]
        if self._fanout is None:
            self._fanout = max(2, math.ceil(n ** (1.0 / 3.0)))
        fanout = self._fanout
        if n < fanout * fanout:
            raise ConfigError(
                f"need at least fanout^2={fanout * fanout} vectors, got {n}"
            )
        rng = np.random.default_rng(self._seed)
        # Level 1: fanout branches.
        self._top = _kmeans(vectors, fanout, iterations=6, rng=rng)
        branch = np.argmin(_nearest(self._top, vectors), axis=1)
        # Level 2: fanout leaves under each branch.
        if not self._pq.is_trained:
            self._pq.train(vectors)
        second = np.zeros((fanout * fanout, vectors.shape[1]),
                          dtype=np.float32)
        self._leaf_ids = [np.empty(0, dtype=np.int64)] * (fanout * fanout)
        self._leaf_codes = [np.empty((0, self._pq.num_subspaces),
                                     dtype=np.uint8)] * (fanout * fanout)
        for b in range(fanout):
            member_ids = np.nonzero(branch == b)[0]
            members = vectors[member_ids]
            leaves = min(fanout, max(len(members), 1))
            if len(members) == 0:
                continue
            if len(members) < leaves:
                leaves = len(members)
            centroids = _kmeans(members, leaves, iterations=6, rng=rng)
            assign = np.argmin(_nearest(centroids, members), axis=1)
            for leaf in range(leaves):
                slot = b * fanout + leaf
                second[slot] = centroids[leaf]
                ids = member_ids[assign == leaf]
                self._leaf_ids[slot] = ids.astype(np.int64)
                self._leaf_codes[slot] = self._pq.encode(vectors[ids]) \
                    if len(ids) else self._leaf_codes[slot]
        self._second = second
        self._size = n
        return self

    def scanned_fraction(self, branches: int, leaves_per_branch: int) -> float:
        """Approximate fraction of vectors a search touches."""
        if not self.is_built:
            raise ConfigError("index is not built yet")
        probed = branches * leaves_per_branch
        mean_leaf = self._size / max(self.num_leaves, 1)
        return min(probed * mean_leaf / self._size, 1.0)

    def search(self, queries: np.ndarray, k: int, branches: int = 2,
               leaves_per_branch: int = 4) -> Tuple[np.ndarray, np.ndarray]:
        """Descend the tree and ADC-scan the selected leaves.

        Args:
            queries: (q, dim) or (dim,) array.
            k: Neighbors per query.
            branches: Top-level children explored per query.
            leaves_per_branch: Second-level children per explored branch.

        Returns:
            ``(distances, indices)`` of shape (q, k), padded with
            ``inf`` / ``-1`` when fewer candidates exist.
        """
        if not self.is_built:
            raise ConfigError("index is not built yet")
        if k <= 0 or branches <= 0 or leaves_per_branch <= 0:
            raise ConfigError("k, branches and leaves_per_branch must be "
                              "positive")
        fanout = self._fanout
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        branches = min(branches, fanout)
        leaves_per_branch = min(leaves_per_branch, fanout)
        q = queries.shape[0]
        out_dist = np.full((q, k), np.inf, dtype=np.float32)
        out_idx = np.full((q, k), -1, dtype=np.int64)
        top_d = _nearest(self._top, queries)
        for qi in range(q):
            chosen_branches = np.argpartition(top_d[qi],
                                              branches - 1)[:branches]
            candidate_ids = []
            candidate_dists = []
            for b in chosen_branches:
                slots = np.arange(b * fanout, (b + 1) * fanout)
                leaf_d = _nearest(self._second[slots],
                                  queries[qi:qi + 1])[0]
                take = min(leaves_per_branch, fanout)
                best_leaves = slots[np.argpartition(leaf_d, take - 1)[:take]]
                for slot in best_leaves:
                    ids = self._leaf_ids[slot]
                    if not len(ids):
                        continue
                    dists = self._pq.adc_scan(self._leaf_codes[slot],
                                              queries[qi])
                    candidate_ids.append(ids)
                    candidate_dists.append(dists)
            if not candidate_ids:
                continue
            ids = np.concatenate(candidate_ids)
            dists = np.concatenate(candidate_dists)
            take = min(k, len(ids))
            best = np.argpartition(dists, take - 1)[:take]
            order = np.argsort(dists[best])
            chosen = best[order]
            out_dist[qi, :take] = dists[chosen]
            out_idx[qi, :take] = ids[chosen]
        return out_dist, out_idx
