"""Facade over the retrieval cost models.

:class:`RetrievalSimulator` answers the pipeline layer's question: "a
request performs a retrieval of ``queries_per_retrieval`` query vectors
against this database on ``num_servers`` shards at batch size B -- what
latency and request throughput does that cost?" It also models Case II's
brute-force kNN over tiny in-memory databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.hardware.cpu import CPUServerSpec
from repro.retrieval.distributed import DistributedRetrievalModel
from repro.retrieval.scann_model import DatabaseConfig


@dataclass(frozen=True)
class RetrievalPerf:
    """Performance of one retrieval stage configuration.

    Attributes:
        latency: Seconds to answer a batch of retrieval requests.
        request_qps: Retrieval *requests* per second (a request may carry
            several query vectors).
        query_qps: Query vectors per second.
        num_servers: CPU servers used.
        batch: Request batch size evaluated.
        queries_per_request: Query vectors each request fans out to.
    """

    latency: float
    request_qps: float
    query_qps: float
    num_servers: int
    batch: int
    queries_per_request: int


class RetrievalSimulator:
    """Cached retrieval cost model for one database + server type."""

    def __init__(self, database: DatabaseConfig, server: CPUServerSpec,
                 brute_force: bool = False,
                 base_latency: float = 1e-4) -> None:
        self._database = database
        self._server = server
        self._brute_force = brute_force
        self._base_latency = base_latency
        self._model = DistributedRetrievalModel(
            self._effective_database(), server, base_latency)
        self._cache: Dict[Tuple[int, int, int], RetrievalPerf] = {}

    @property
    def database(self) -> DatabaseConfig:
        """Database configuration being searched."""
        return self._database

    @property
    def brute_force(self) -> bool:
        """Whether searches scan the full database (Case II kNN)."""
        return self._brute_force

    def min_servers(self) -> int:
        """Fewest servers that hold the (sharded) database."""
        return self._model.min_servers()

    def _effective_database(self) -> DatabaseConfig:
        if not self._brute_force:
            return self._database
        # Brute-force kNN scans every vector: p_scan = 1, no tree levels.
        return DatabaseConfig(
            num_vectors=self._database.num_vectors,
            dim=self._database.dim,
            bytes_per_vector=self._database.bytes_per_vector,
            scan_fraction=1.0,
            tree_fanout=self._database.tree_fanout,
            tree_levels=1,
        )

    def perf(self, batch: int, num_servers: int,
             queries_per_request: int = 1) -> RetrievalPerf:
        """Retrieval performance for a request batch (cached).

        Args:
            batch: Retrieval requests batched together.
            num_servers: CPU servers allocated to retrieval.
            queries_per_request: Query vectors per request (multi-query
                retrieval, Case I sweeps 1-8).

        Raises:
            ConfigError / CapacityError: on invalid sizes or too few
                servers for the database.
        """
        if queries_per_request <= 0:
            raise ConfigError("queries_per_request must be positive")
        key = (batch, num_servers, queries_per_request)
        if key in self._cache:
            return self._cache[key]
        query_batch = batch * queries_per_request
        shard_perf = self._model.search_perf(query_batch, num_servers)
        perf = RetrievalPerf(
            latency=shard_perf.latency,
            request_qps=batch / shard_perf.latency,
            query_qps=shard_perf.qps,
            num_servers=num_servers,
            batch=batch,
            queries_per_request=queries_per_request,
        )
        self._cache[key] = perf
        return perf
