#!/usr/bin/env python3
"""Enterprise search with query rewriting and reranking (paper Case IV).

A search product rewrites vague user queries with an 8B model, retrieves
from the hyperscale corpus, reranks candidates with a 120M encoder, then
generates with a 70B LLM. This example reproduces the §5.4 / §7 studies:
the rewriter's autoregressive decode inflates TTFT, placement matters,
and micro-batching bursts helps moderately.

Run:
    python examples/rewriter_reranker_search.py
"""

from repro import ClusterSpec, RAGO, Stage, case_iv_rewriter_reranker
from repro.pipeline import RAGPerfModel
from repro.pipeline.microbatch import ttft_reduction
from repro.rago import SearchConfig
from repro.rago.placement import (
    enumerate_placements,
    fully_collocated,
    fully_disaggregated,
)


def placement_study(cluster: ClusterSpec) -> None:
    print("=== placement sensitivity (Fig. 17b) ===")
    schema = case_iv_rewriter_reranker("70B")
    rago = RAGO(schema, cluster)
    policies = {
        "collocated": [fully_collocated(schema)],
        "disaggregated": [fully_disaggregated(schema)],
        "hybrid (all plans)": enumerate_placements(schema),
    }
    results = {}
    for name, placements in policies.items():
        config = SearchConfig(max_batch=64, max_decode_batch=512,
                              placements=placements)
        results[name] = rago.optimize(config).max_qps_per_chip
    for name, perf in results.items():
        print(f"  {name:20s} max qps/chip={perf.qps_per_chip:6.3f}")
    best = results["hybrid (all plans)"]
    print(f"  best hybrid schedule: {best.schedule.describe()}")
    print()


def ttft_anatomy(cluster: ClusterSpec) -> None:
    print("=== TTFT anatomy at batch 1 (Fig. 11) ===")
    pm = RAGPerfModel(case_iv_rewriter_reranker("70B"), cluster)
    resources = {Stage.REWRITE_PREFIX: 4, Stage.REWRITE_DECODE: 4,
                 Stage.RETRIEVAL: cluster.num_servers, Stage.RERANK: 4,
                 Stage.PREFIX: 16}
    total = 0.0
    for stage, resource in resources.items():
        latency = pm.perf_options(stage, 1, resource)[0].latency
        total += latency
        print(f"  {str(stage):16s} {latency * 1e3:7.2f} ms")
    print(f"  {'total TTFT':16s} {total * 1e3:7.2f} ms")
    print("  -> the 32-token autoregressive rewrite dominates TTFT")
    print()


def burst_microbatching(cluster: ClusterSpec) -> None:
    print("=== micro-batching a 32-request burst (Fig. 19c) ===")
    pm = RAGPerfModel(case_iv_rewriter_reranker("70B"), cluster)
    resources = {Stage.REWRITE_PREFIX: 4, Stage.REWRITE_DECODE: 4,
                 Stage.RETRIEVAL: cluster.num_servers, Stage.RERANK: 4,
                 Stage.PREFIX: 16}
    reductions = ttft_reduction(pm, resources, burst_size=32,
                                microbatch_sizes=[1, 2, 4, 8, 16])
    for size, reduction in sorted(reductions.items()):
        print(f"  micro-batch {size:2d}: TTFT reduction "
              f"{100 * reduction:5.1f}%")
    print("  -> moderate gains: the rewriter decode's latency is flat in")
    print("     batch size, limiting pipelining benefits (paper: ~25%)")


def main() -> None:
    cluster = ClusterSpec(num_servers=32)
    placement_study(cluster)
    ttft_anatomy(cluster)
    burst_microbatching(cluster)


if __name__ == "__main__":
    main()
