#!/usr/bin/env python3
"""End-to-end functional retrieval demo + calibration.

Exercises the *functional* side of the library the way the paper's
methodology does (§4b): build a real IVF-PQ index over a synthetic
corpus, measure its recall against brute-force ground truth across scan
fractions, time the PQ scan to calibrate the analytical model, and then
project retrieval performance to the paper's 64-billion-vector regime
with the calibrated ScaNN roofline.

Run:
    python examples/functional_rag_demo.py
"""

import numpy as np

from repro import BruteForceIndex, IVFPQIndex, ProductQuantizer
from repro.hardware import EPYC_MILAN
from repro.retrieval import (
    DistributedRetrievalModel,
    TreePQIndex,
    calibrate_scan_rate,
    tune_scan_fraction,
)
from repro.schema.paradigms import HYPERSCALE_DATABASE
from repro.workloads import clustered_vectors

CORPUS_SIZE = 20_000
DIM = 64
NUM_QUERIES = 100
TOP_K = 10


def build_and_measure_recall():
    print("=== functional IVF-PQ: recall vs scanned fraction ===")
    corpus, _ = clustered_vectors(CORPUS_SIZE, DIM, num_clusters=64,
                                  seed=42)
    queries = corpus[:NUM_QUERIES] + 0.01 * np.random.default_rng(
        7).standard_normal((NUM_QUERIES, DIM)).astype(np.float32)

    exact = BruteForceIndex(corpus)
    _, truth = exact.search(queries, k=TOP_K)

    quantizer = ProductQuantizer(num_subspaces=16, seed=42)
    index = IVFPQIndex(nlist=128, quantizer=quantizer, seed=42)
    index.build(corpus)

    for nprobe in (1, 2, 4, 8, 16, 32):
        _, approx = index.search(queries, k=TOP_K, nprobe=nprobe)
        hits = sum(len(set(a) & set(t)) for a, t in zip(approx, truth))
        recall = hits / (NUM_QUERIES * TOP_K)
        fraction = index.scanned_fraction(nprobe)
        print(f"  nprobe={nprobe:3d}  scanned={100 * fraction:5.1f}%  "
              f"recall@{TOP_K}={recall:.3f}")
    print("  -> the paper's p_scan knob: more scanned bytes, more recall")
    print()
    return index


def tree_index_and_tuning():
    print("=== multi-level tree + recall-driven p_scan tuning ===")
    corpus, _ = clustered_vectors(CORPUS_SIZE, DIM, num_clusters=64,
                                  seed=42)
    queries = corpus[:NUM_QUERIES]
    tree = TreePQIndex(quantizer=ProductQuantizer(num_subspaces=16,
                                                  seed=42), seed=42)
    tree.build(corpus)
    exact = BruteForceIndex(corpus)
    _, truth = exact.search(queries, k=TOP_K)
    for branches, leaves in ((1, 2), (2, 4), (4, 8)):
        _, approx = tree.search(queries, k=TOP_K, branches=branches,
                                leaves_per_branch=leaves)
        hits = sum(len(set(a) & set(t)) for a, t in zip(approx, truth))
        print(f"  tree probe b={branches} l={leaves}: scanned="
              f"{100 * tree.scanned_fraction(branches, leaves):5.1f}%  "
              f"recall@{TOP_K}={hits / truth.size:.3f}")
    print(f"  (fanout {tree.fanout}: the paper's N^(1/3) sizing rule; on "
          f"this dense corpus the tree reaches the PQ quantization "
          f"ceiling with <1% scanned -- exactly the memory-for-recall "
          f"trade PQ makes)")

    quantizer = ProductQuantizer(num_subspaces=16, seed=43)
    flat = IVFPQIndex(nlist=128, quantizer=quantizer, seed=43).build(corpus)
    tuned = tune_scan_fraction(flat, corpus, queries, k=TOP_K,
                               target_recall=0.6)
    if tuned.selected:
        print(f"  tuned p_scan for recall>=0.6: "
              f"{100 * tuned.selected.scan_fraction:.1f}% "
              f"(nprobe {tuned.selected.nprobe}, recall "
              f"{tuned.selected.recall:.3f}) -- the paper's §3.3 loop")
    print()


def calibrate_and_project():
    print("=== calibration: functional engine -> analytical model ===")
    result = calibrate_scan_rate(num_vectors=CORPUS_SIZE, dim=DIM,
                                 num_queries=8, repeats=3, seed=42)
    print(f"  measured PQ scan rate: "
          f"{result.bytes_per_second / 1e9:.2f} GB/s per thread "
          f"(paper's ScaNN on EPYC: 18 GB/s per core)")

    # Project to the 64-billion-vector database on the paper's servers,
    # once with this machine's measured rate and once with the paper's.
    for label, server in (
            ("this machine's rate", result.as_server_spec(EPYC_MILAN)),
            ("paper calibration", EPYC_MILAN)):
        model = DistributedRetrievalModel(HYPERSCALE_DATABASE, server)
        servers = model.min_servers()
        batch1 = model.search_perf(batch=1, num_servers=2 * servers)
        saturated = model.search_perf(batch=512, num_servers=2 * servers)
        print(f"  [{label}] {2 * servers} servers: batch-1 latency "
              f"{batch1.latency * 1e3:6.1f} ms, saturated "
              f"{saturated.qps:7.0f} queries/s")
    print("  -> the paper's 10 ms batch-1 retrieval over 32 hosts")


def main() -> None:
    build_and_measure_recall()
    tree_index_and_tuning()
    calibrate_and_project()


if __name__ == "__main__":
    main()
