#!/usr/bin/env python3
"""Tiered closed-loop serving: who keeps their SLO under overload?

Open-loop replays measure a schedule; closed loops measure an
*economy*: a population of users who think, submit, and wait, split
into SLO tiers with different priorities. This example builds a
deliberately decode-starved fleet, drives it with 96 closed-loop
users at roughly triple the sustainable completion rate, and serves
the same population two ways:

1. untiered baseline -- everyone equal, first-come-first-served
   decode admission;
2. free/paid tiers -- ``PriorityAdmission`` derived from the tier
   ranks plus ``session-affine`` routing (each session pinned to one
   replica).

It then asserts the reproduction's headline fairness claim: the paid
tier's joint SLO attainment holds at or above the untiered baseline
while the free tier absorbs the overload -- and, closed loops being
closed, not a single request is lost in either run.

Run:
    python examples/tiered_serving.py
"""

from repro.hardware import ClusterSpec
from repro.pipeline import PlacementGroup, RAGPerfModel, Schedule
from repro.reporting import format_serving_report
from repro.schema import Stage, case_i_hyperscale
from repro.sim import (FleetEngine, PriorityAdmission,
                       SessionAffineRouting, SLOTarget)
from repro.workloads import (ClosedLoopDriver, UserPopulation,
                             resolve_tier_policy)

USERS = 96
THINK_S = 0.02          # mean think time: aggressive, sustained load
CONCURRENCY = 2         # requests each user keeps in flight
HORIZON_S = 6.0
SLO = SLOTarget(ttft=0.3, tpot=0.008)


def build_fleet(admission=None, routing=None) -> FleetEngine:
    """A 2-replica fleet starved on decode (4 chips, batch 4): decode
    admission is the queue, which is exactly where priority ranks
    bite."""
    cluster = ClusterSpec(num_servers=32)
    pm = RAGPerfModel(case_i_hyperscale("8B"), cluster)
    schedule = Schedule(
        groups=(PlacementGroup((Stage.PREFIX,), 32),
                PlacementGroup((Stage.DECODE,), 4)),
        batches={Stage.PREFIX: 32, Stage.DECODE: 4,
                 Stage.RETRIEVAL: 64},
    )
    return FleetEngine(pm, schedule, replicas=2, routing=routing,
                       admission=admission)


def closed_loop(tiers: str, admission=None, routing=None):
    population = UserPopulation(users=USERS, think_time=THINK_S,
                                concurrency=CONCURRENCY, session_len=4,
                                seed=7,
                                tiers=resolve_tier_policy(tiers))
    fleet = build_fleet(admission=admission, routing=routing)
    driver = ClosedLoopDriver(population, fleet, horizon=HORIZON_S)
    driver.run()
    trace = fleet.recorded_trace(scenario="sessions")
    return fleet.report(trace, slo=SLO), driver


def main() -> None:
    print(f"closed loop: {USERS} users x {CONCURRENCY} in flight, "
          f"think {THINK_S * 1e3:.0f} ms, horizon {HORIZON_S:g}s\n")

    print("=== untiered baseline (greedy admission) ===")
    baseline, base_driver = closed_loop("single")
    print(format_serving_report(baseline))
    print()

    print("=== free/paid tiers (priority + session-affine) ===")
    tiered, tier_driver = closed_loop(
        "free-paid", admission=PriorityAdmission(),
        routing=SessionAffineRouting())
    print(format_serving_report(tiered))
    print()

    # Closed loops never lose requests.
    for driver in (base_driver, tier_driver):
        assert driver.submitted == driver.completed > 0
    for bucket in tier_driver.tier_counts().values():
        assert bucket["submitted"] == bucket["completed"]

    base_joint = baseline.slo_attainment["joint"]
    paid = tiered.tiers["paid"]["slo_attainment"]["joint"]
    free = tiered.tiers["free"]["slo_attainment"]["joint"]
    print(f"joint SLO attainment: baseline {base_joint:.1%}, "
          f"paid {paid:.1%}, free {free:.1%}")
    assert base_joint < 0.5, "overload should sink the untiered fleet"
    assert paid >= base_joint, \
        "priority admission must shield the paid tier"
    assert free < base_joint, "the free tier pays for the shield"
    print("OK: paid tier held its SLO under overload; the free tier "
          "absorbed it; zero requests lost.")


if __name__ == "__main__":
    main()
