#!/usr/bin/env python3
"""Long-context document assistant (paper Case II).

A NotebookLM-style product: users upload long documents (100K-10M
tokens) and ask questions. Instead of stuffing the document into the
prompt, the serving system encodes it into a small vector database and
retrieves only the relevant chunks. This example reproduces the §5.2
study: the encoder -- 500x smaller than the generative LLM -- becomes
the bottleneck, retrieval is negligible, and RAG beats a long-context
LLM by orders of magnitude.

Run:
    python examples/long_context_assistant.py
"""

from repro import ClusterSpec, RAGO, case_ii_long_context
from repro.baselines import extension_baseline_search, long_context_llm_perf
from repro.models import LLAMA3_70B
from repro.pipeline import RAGPerfModel, time_breakdown
from repro.rago import SearchConfig


def context_length_sweep(cluster: ClusterSpec) -> None:
    print("=== context length sweep (Fig. 8) ===")
    for context in (100_000, 1_000_000, 10_000_000):
        schema = case_ii_long_context(context, "70B")
        pm = RAGPerfModel(schema, cluster)
        best = RAGO(schema, cluster).max_qps_per_chip()
        shares = time_breakdown(pm)
        parts = "  ".join(f"{stage}={100 * share:4.1f}%"
                          for stage, share in shares.items())
        print(f"  {context / 1e6:4.1f}M tokens: max qps/chip="
              f"{best.qps_per_chip:6.3f}  [{parts}]")
    print("  -> encoding dominates as the context grows; retrieval <1%")
    print()


def rag_vs_long_context_llm(cluster: ClusterSpec) -> None:
    print("=== RAG vs long-context LLM at 1M tokens (para. 5.2) ===")
    schema = case_ii_long_context(1_000_000, "70B")
    rago = RAGO(schema, cluster).optimize()
    lc = long_context_llm_perf(LLAMA3_70B, 1_000_000, 64, cluster.xpu)
    print(f"  long-context LLM: ttft={lc.ttft:8.2f} s   "
          f"qps/chip={lc.qps_per_chip:.2e}  "
          f"(max decode batch {lc.max_decode_batch})")
    print(f"  RAG             : ttft={rago.min_ttft.ttft:8.3f} s   "
          f"qps/chip={rago.max_qps_per_chip.qps_per_chip:.3f}")
    print(f"  -> TTFT {lc.ttft / rago.min_ttft.ttft:,.0f}x faster, "
          f"QPS/chip "
          f"{rago.max_qps_per_chip.qps_per_chip / lc.qps_per_chip:,.0f}x "
          f"higher with RAG (paper: 2852.6x / 6633.9x)")
    print()


def schedule_comparison(cluster: ClusterSpec) -> None:
    print("=== RAGO vs LLM-extension baseline schedules (Table 4) ===")
    schema = case_ii_long_context(1_000_000, "70B")
    pm = RAGPerfModel(schema, cluster)
    rago = RAGO(schema, cluster).optimize(SearchConfig())
    baseline = extension_baseline_search(pm)
    for name, perf in (("RAGO max-QPS", rago.max_qps_per_chip),
                       ("RAGO min-TTFT", rago.min_ttft),
                       ("baseline max-QPS", baseline.max_qps_per_chip),
                       ("baseline min-TTFT", baseline.min_ttft)):
        print(f"  {name:18s} ttft={perf.ttft:7.3f} s  "
              f"qps/chip={perf.qps_per_chip:6.3f}")
        print(f"    {perf.schedule.describe()}")
    speedup = (rago.max_qps_per_chip.qps_per_chip
               / baseline.max_qps_per_chip.qps_per_chip)
    print(f"  -> RAGO delivers {speedup:.2f}x the baseline's max "
          f"QPS/chip (paper: 1.7x)")


def main() -> None:
    cluster = ClusterSpec(num_servers=32)
    context_length_sweep(cluster)
    rag_vs_long_context_llm(cluster)
    schedule_comparison(cluster)


if __name__ == "__main__":
    main()
