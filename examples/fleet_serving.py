#!/usr/bin/env python3
"""Fleet serving: validate the provisioning model under live traffic.

The provisioning model answers "how many replicas sustain this load"
analytically; this example puts the answer on trial. It sizes a fleet
with ``OptimizerSession.provision``, builds exactly that fleet as a
multi-replica DES (``OptimizerSession.fleet_engine``), replays a
bursty trace offered *above* the fleet's rated capacity, and asserts
the attained throughput lands within tolerance of the provisioning
model's ``total_qps`` -- the saturation check that turns a sizing
formula into a tested claim. Along the way it demos the per-replica
breakdown and a zero-loss rolling schedule swap.

Run:
    python examples/fleet_serving.py
"""

from repro import ClusterSpec, OptimizerSession, case_i_hyperscale
from repro.reporting import format_fleet_breakdown, format_serving_report
from repro.workloads import bursty_trace

TARGET_QPS = 1000.0
TOLERANCE = 0.20  # DES saturation vs analytical rating


def main() -> None:
    # Cap each replica at 16 accelerator chips: fleets built from
    # modest replicated cells are the provisioning model's sweet spot
    # (and force a genuinely multi-replica answer on this cluster).
    session = (OptimizerSession(case_i_hyperscale("1B"),
                                ClusterSpec(num_servers=32))
               .with_search(budget_xpus=16))

    # 1. Size the fleet analytically.
    sizing = session.provision(TARGET_QPS)
    print(f"provisioned: {sizing.replicas} replica(s) x "
          f"{sizing.perf.charged_chips} chips = {sizing.budget_xpus} "
          f"XPUs ({sizing.total_qps:.1f} QPS rated, target "
          f"{TARGET_QPS:.0f})")
    print(f"per-replica schedule: {sizing.perf.schedule.describe()}")
    print()

    # 2. Build that exact fleet and overload it with bursty traffic.
    #    The burst shape keeps even the off-state rate above the
    #    fleet's rating (2x mean, 1.5x bursts, 40% duty), so attained
    #    throughput measures capacity, not the generator.
    fleet = session.fleet_engine(provisioning=sizing,
                                 routing="least-in-flight")
    trace = bursty_trace(2.0 * sizing.total_qps, duration=8.0, seed=7,
                         mean_decode_len=64, burst_factor=1.5,
                         on_fraction=0.4)
    for arrival, decode_len in zip(trace.arrivals, trace.decode_lens):
        fleet.submit(arrival, decode_len=decode_len)
    fleet.drain()
    report = fleet.report(trace)
    print(format_serving_report(report))
    print()
    print(format_fleet_breakdown(fleet.replica_stats()))
    print()

    # 3. The acceptance check: measured saturation within tolerance of
    #    the provisioning model's rating.
    attained = report.throughput
    error = abs(attained - sizing.total_qps) / sizing.total_qps
    print(f"attained {attained:.1f} QPS vs rated "
          f"{sizing.total_qps:.1f} QPS ({100 * error:.1f}% off)")
    assert error <= TOLERANCE, (
        f"fleet attained {attained:.1f} QPS; expected within "
        f"{100 * TOLERANCE:.0f}% of the rated {sizing.total_qps:.1f}")
    print(f"-> provisioning validated: within {100 * TOLERANCE:.0f}% "
          f"of the analytical rating under live bursty load")
    print()

    # 4. Bonus: a rolling schedule swap mid-fleet loses nothing.
    swap_fleet = session.fleet_engine(provisioning=sizing,
                                      routing="round-robin")
    pairs = list(zip(trace.arrivals, trace.decode_lens))
    half = len(pairs) // 2
    for arrival, decode_len in pairs[:half]:
        swap_fleet.submit(arrival, decode_len=decode_len)
    swap_fleet.step(until=pairs[half - 1][0])
    swap_fleet.swap_replica(0, sizing.perf.schedule)
    for arrival, decode_len in pairs[half:]:
        swap_fleet.submit(max(arrival, swap_fleet.now),
                          decode_len=decode_len)
    swap_fleet.drain()
    assert swap_fleet.completed == swap_fleet.offered == len(pairs)
    states = [row["state"] for row in swap_fleet.replica_stats()]
    print(f"rolling swap: {swap_fleet.completed}/{swap_fleet.offered} "
          f"requests completed across generations {states} -- zero "
          f"requests lost")


if __name__ == "__main__":
    main()
