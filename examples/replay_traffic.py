#!/usr/bin/env python3
"""Replay live traffic scenarios through a searched schedule.

RAGO picks schedules from closed-form steady-state math; this example
asks what happens to one of those schedules under *traffic*: the same
average load shaped as a memoryless Poisson stream, as Markov-modulated
bursts (flash crowds), and as a diurnal rate curve. Queueing effects
diverge from the analytical model exactly where traffic stops being
smooth -- that divergence is what the trace-driven subsystem measures.

The same study is one command per scenario on the CLI:

    python -m repro replay --case i --llm 8B --scenario bursty --json out.json

Run:
    python examples/replay_traffic.py
"""

from repro import ClusterSpec, OptimizerSession, SLOTarget, case_i_hyperscale
from repro.reporting import format_serving_report
from repro.workloads import scenario_trace

DURATION = 12.0
SEED = 7


def main() -> None:
    session = OptimizerSession(case_i_hyperscale("8B"),
                               ClusterSpec(num_servers=32))
    chosen = session.optimize().max_qps_per_chip
    print("schedule under test (RAGO's throughput-optimal point):")
    print(f"  {chosen.schedule.describe()}")
    print(f"analytical prediction: qps={chosen.qps:.0f} "
          f"ttft={chosen.ttft * 1e3:.1f} ms tpot={chosen.tpot * 1e3:.2f} ms")

    # Score each replay against the same targets: a TTFT budget of 5x
    # the analytical (unloaded) TTFT and a TPOT budget of 2x.
    slo = SLOTarget(ttft=5.0 * chosen.ttft, tpot=2.0 * chosen.tpot)
    print(f"SLO: ttft <= {slo.ttft * 1e3:.0f} ms, "
          f"tpot <= {slo.tpot * 1e3:.2f} ms")

    rate = 0.7 * chosen.qps  # identical average load for every scenario
    for name in ("poisson", "bursty", "diurnal"):
        trace = scenario_trace(name, rate_qps=rate, duration=DURATION,
                               seed=SEED, mean_decode_len=256)
        report = session.evaluate_trace(chosen.schedule, trace, slo=slo)
        print()
        print("=" * 60)
        print(format_serving_report(report))

    print()
    print("reading: all three scenarios offer the same average load, but")
    print("only poisson resembles the closed-form regime. Bursts push the")
    print("p99 TTFT and SLO misses up through queueing alone; the diurnal")
    print("peak does the same on a slower time scale. This is why found")
    print("schedules are validated under replayed traffic, not just QPS.")


if __name__ == "__main__":
    main()
