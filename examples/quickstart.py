#!/usr/bin/env python3
"""Quickstart: optimize a RAG serving pipeline with RAGO.

Builds the paper's Case I workload (hyperscale retrieval + an 8B
generative LLM), runs the schedule search on the default 32-server /
128-XPU cluster, and prints the TTFT vs QPS/chip Pareto frontier with
the schedules that achieve its endpoints.

Run:
    python examples/quickstart.py
"""

from repro import ClusterSpec, RAGO, case_i_hyperscale


def main() -> None:
    schema = case_i_hyperscale("8B")
    cluster = ClusterSpec(num_servers=32)
    print(f"workload : {schema.describe()}")
    print(f"cluster  : {cluster.num_servers} servers x "
          f"{cluster.xpus_per_server} {cluster.xpu.name} "
          f"({cluster.total_xpus} chips)")
    print()

    rago = RAGO(schema, cluster)
    result = rago.optimize()

    print(f"searched {result.num_plans} placement x allocation plans "
          f"({result.num_candidates} batching candidates)")
    print()
    print("Pareto frontier (TTFT vs QPS/chip):")
    for perf in result.frontier:
        print(f"  ttft={perf.ttft * 1e3:8.1f} ms   "
              f"qps/chip={perf.qps_per_chip:7.2f}   "
              f"xpus={perf.total_xpus:3d}   "
              f"servers={perf.retrieval_servers}")
    print()

    best = result.max_qps_per_chip
    fastest = result.min_ttft
    print("throughput-optimal schedule:")
    print(f"  {best.schedule.describe()}")
    print(f"  -> {best.qps_per_chip:.2f} QPS/chip at "
          f"{best.ttft * 1e3:.1f} ms TTFT, TPOT {best.tpot * 1e3:.2f} ms")
    print()
    print("latency-optimal schedule:")
    print(f"  {fastest.schedule.describe()}")
    print(f"  -> {fastest.ttft * 1e3:.1f} ms TTFT at "
          f"{fastest.qps_per_chip:.2f} QPS/chip")


if __name__ == "__main__":
    main()
