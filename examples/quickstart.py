#!/usr/bin/env python3
"""Quickstart: declare a RAG pipeline, open an optimizer session.

Declares the paper's Case I workload (hyperscale retrieval + an 8B
generative LLM) through the builder API, runs the memoized schedule
search on the default 32-server / 128-XPU cluster, and prints the TTFT
vs QPS/chip Pareto frontier with the schedules picked for each
objective. Finally the workload is serialized to JSON -- the same file
``python -m repro optimize --config quickstart_workload.json`` accepts.

Run:
    python examples/quickstart.py
"""

from repro import ClusterSpec, OptimizerSession, config
from repro.schema import pipeline
from repro.schema.paradigms import HYPERSCALE_DATABASE


def main() -> None:
    # Any stage composition works; this one matches case_i_hyperscale("8B").
    schema = (pipeline("quickstart-rag")
              .retrieve(HYPERSCALE_DATABASE, neighbors=5)
              .generate("8B")
              .build())
    cluster = ClusterSpec(num_servers=32)
    print(f"workload : {schema.describe()}")
    print(f"cluster  : {cluster.num_servers} servers x "
          f"{cluster.xpus_per_server} {cluster.xpu.name} "
          f"({cluster.total_xpus} chips)")
    print()

    session = OptimizerSession(schema, cluster)
    result = session.optimize()  # repeated calls hit the session memo

    print(f"searched {result.num_plans} placement x allocation plans "
          f"({result.num_candidates} batching candidates)")
    print()
    print("Pareto frontier (TTFT vs QPS/chip):")
    for perf in result.frontier:
        print(f"  ttft={perf.ttft * 1e3:8.1f} ms   "
              f"qps/chip={perf.qps_per_chip:7.2f}   "
              f"xpus={perf.total_xpus:3d}   "
              f"servers={perf.retrieval_servers}")
    print()

    best = session.best()  # throughput-optimal by default
    fastest = session.with_objective("min_ttft").best()
    print("throughput-optimal schedule:")
    print(f"  {best.schedule.describe()}")
    print(f"  -> {best.qps_per_chip:.2f} QPS/chip at "
          f"{best.ttft * 1e3:.1f} ms TTFT, TPOT {best.tpot * 1e3:.2f} ms")
    print()
    print("latency-optimal schedule:")
    print(f"  {fastest.schedule.describe()}")
    print(f"  -> {fastest.ttft * 1e3:.1f} ms TTFT at "
          f"{fastest.qps_per_chip:.2f} QPS/chip")
    print()

    # Workloads are reproducible artifacts: serialize, reload, re-run.
    config.save("quickstart_workload.json", schema)
    assert config.load("quickstart_workload.json") == schema
    print("wrote quickstart_workload.json "
          "(try: python -m repro optimize --config quickstart_workload.json)")


if __name__ == "__main__":
    main()
