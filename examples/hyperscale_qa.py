#!/usr/bin/env python3
"""Hyperscale question answering (paper Case I).

A RETRO-style deployment: a 64-billion-vector knowledge corpus serves a
question-answering product. This example walks the paper's §5.1
characterization: how RAG with a small model compares to a bigger
LLM-only system, where the time goes, and how the bottleneck moves with
query fan-out and accelerator generation.

Run:
    python examples/hyperscale_qa.py
"""

from repro import ClusterSpec, RAGO, Stage, case_i_hyperscale, llm_only
from repro.hardware import XPU_GENERATIONS
from repro.pipeline import RAGPerfModel, time_breakdown


def rag_vs_llm_only(cluster: ClusterSpec) -> None:
    print("=== RAG with small models vs LLM-only (Fig. 5) ===")
    rows = []
    for schema in (case_i_hyperscale("1B"), case_i_hyperscale("8B")):
        best = RAGO(schema, cluster).max_qps_per_chip()
        rows.append((schema.name, best.qps_per_chip, best.ttft))
    for label in ("8B", "70B"):
        best = RAGO(llm_only(label), cluster).max_qps_per_chip()
        rows.append((f"llm-only-{label}", best.qps_per_chip, best.ttft))
    for name, qps, ttft in rows:
        print(f"  {name:18s} max qps/chip={qps:7.2f}  "
              f"(ttft {ttft * 1e3:7.1f} ms)")
    print()


def where_does_time_go(cluster: ClusterSpec) -> None:
    print("=== time x resource breakdown by model size (Fig. 6c/d) ===")
    for label in ("1B", "8B", "70B"):
        shares = time_breakdown(RAGPerfModel(case_i_hyperscale(label),
                                             cluster))
        parts = "  ".join(f"{stage}={100 * share:5.1f}%"
                          for stage, share in shares.items())
        print(f"  RAG {label:4s} {parts}")
    print()


def query_fanout(cluster: ClusterSpec) -> None:
    print("=== multi-query retrieval (Fig. 6a) ===")
    for queries in (1, 2, 4, 8):
        schema = case_i_hyperscale("8B", queries_per_retrieval=queries)
        best = RAGO(schema, cluster).max_qps_per_chip()
        print(f"  {queries} quer{'y' if queries == 1 else 'ies'}/retrieval:"
              f" max qps/chip={best.qps_per_chip:6.2f}")
    print("  -> QPS roughly halves per query doubling: retrieval-bound")
    print()


def accelerator_generations() -> None:
    print("=== retrieval share by XPU generation (Fig. 7a) ===")
    for xpu in XPU_GENERATIONS:
        cluster = ClusterSpec(num_servers=32, xpu=xpu)
        shares = time_breakdown(RAGPerfModel(case_i_hyperscale("8B"),
                                             cluster))
        print(f"  {xpu.name}: retrieval "
              f"{100 * shares[Stage.RETRIEVAL]:5.1f}% of time x resource")
    print("  -> faster chips push the bottleneck toward retrieval")


def main() -> None:
    cluster = ClusterSpec(num_servers=32)
    rag_vs_llm_only(cluster)
    where_does_time_go(cluster)
    query_fanout(cluster)
    accelerator_generations()


if __name__ == "__main__":
    main()
