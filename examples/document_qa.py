#!/usr/bin/env python3
"""Working document Q&A with the functional RAG stack.

Everything runs for real (no performance modelling here): documents are
chunked, embedded with the hashing embedder, indexed with the functional
IVF-PQ engine, and questions flow through the full Fig.-3 pipeline --
query rewriting, retrieval, reranking and extractive generation -- with
cited sources. The same pipeline shape that RAGO schedules, in working
form.

Run:
    python examples/document_qa.py
"""

from repro.ragstack import Document, RAGPipeline

CORPUS = [
    Document(
        doc_id="edison-bio",
        text=("Thomas Edison invented the phonograph in 1877 at his Menlo "
              "Park laboratory. The phonograph could record and reproduce "
              "sound using a tinfoil cylinder. Edison later developed the "
              "motion picture camera and a practical incandescent light "
              "bulb. He held over one thousand patents in the United "
              "States. " * 8),
        metadata={"title": "Edison biography"},
    ),
    Document(
        doc_id="solar-energy",
        text=("Solar panels convert sunlight into electricity using "
              "photovoltaic cells made of silicon. Modern commercial "
              "panels reach around twenty two percent efficiency. The "
              "cost of solar power has fallen by ninety percent since "
              "2010, making it the cheapest source of new electricity in "
              "many regions. Batteries store surplus solar energy for "
              "night use. " * 8),
        metadata={"title": "Solar energy primer"},
    ),
    Document(
        doc_id="volcanoes",
        text=("Volcanic eruptions release ash plumes, gases and molten "
              "lava. Eruption strength is measured with the volcanic "
              "explosivity index. Very large eruptions inject sulfur "
              "dioxide into the stratosphere and can cool the global "
              "climate for years. Monitoring networks track ground "
              "deformation and seismicity to forecast eruptions. " * 8),
        metadata={"title": "Volcanology notes"},
    ),
]

QUESTIONS = [
    "What did Thomas Edison invent?",
    "Please tell me how solar panels convert sunlight?",
    "What do volcanic eruptions release and how are they measured?",
]


def main() -> None:
    pipeline = RAGPipeline(chunk_tokens=48, use_rewriter=True,
                           use_reranker=True, use_ann=False)
    pipeline.add_documents(CORPUS)
    pipeline.build()
    print(f"indexed {pipeline.store.num_documents} documents as "
          f"{pipeline.num_chunks} chunks\n")

    for question in QUESTIONS:
        answer = pipeline.answer(question)
        print(f"Q: {question}")
        print(f"A: {answer.text}")
        print(f"   sources: {', '.join(answer.sources)}")
        top = answer.passages[0]
        print(f"   top passage (score {top.score:.3f}): "
              f"{top.chunk.text[:70]}...")
        print()


if __name__ == "__main__":
    main()
