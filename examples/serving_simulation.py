#!/usr/bin/env python3
"""Validate RAGO's analytical predictions with request-level simulation.

Takes the schedule RAGO selects for Case I, replays Poisson request
streams through the discrete-event serving simulator at increasing load,
and compares measured saturation throughput and latency against the
closed-form predictions. Also shows what the analytical model cannot:
queueing delay growth and p99 tails as the deployment approaches its
capacity.

Run:
    python examples/serving_simulation.py
"""

from repro import ClusterSpec, RAGO, case_i_hyperscale
from repro.sim import ServingSimulator
from repro.workloads import poisson_arrivals


def main() -> None:
    cluster = ClusterSpec(num_servers=32)
    schema = case_i_hyperscale("8B")
    rago = RAGO(schema, cluster)
    result = rago.optimize()
    chosen = result.max_qps_per_chip
    print("schedule under test (RAGO's throughput-optimal point):")
    print(f"  {chosen.schedule.describe()}")
    print(f"analytical prediction: qps={chosen.qps:.0f} "
          f"ttft={chosen.ttft * 1e3:.1f} ms tpot={chosen.tpot * 1e3:.2f} ms")
    print()

    print(f"{'load':>6} {'offered':>8} {'measured':>9} {'mean TTFT':>10} "
          f"{'p99 TTFT':>10} {'TPOT':>7}")
    for load in (0.3, 0.6, 0.9, 1.1, 1.5):
        simulator = ServingSimulator(rago.perf_model, chosen.schedule)
        arrivals = poisson_arrivals(load * chosen.qps, duration=15.0,
                                    seed=11)
        metrics = simulator.run(arrivals)
        busiest = max(metrics.utilization.items(),
                      key=lambda item: item[1])
        print(f"{load:>6.1f} {len(arrivals):>8d} "
              f"{metrics.throughput:>8.0f}/s "
              f"{metrics.mean_ttft * 1e3:>8.1f}ms "
              f"{metrics.p99_ttft * 1e3:>8.1f}ms "
              f"{metrics.mean_tpot * 1e3:>6.2f}ms   "
              f"hottest={busiest[0]} ({100 * busiest[1]:.0f}%)")
    print()
    print("reading: below load 1.0 the measured throughput tracks the")
    print("offered rate and TTFT stays near the analytical prediction;")
    print("past saturation, throughput pins at the analytical QPS while")
    print("queueing inflates TTFT -- the closed-form bottleneck holds.")


if __name__ == "__main__":
    main()
