#!/usr/bin/env python3
"""Autoscaled serving: track a diurnal rate curve with an elastic fleet.

RAGO picks schedules per QPS rating, but day/night traffic has no
single rating: a fleet provisioned for the trough violates SLOs at the
peak, one provisioned for the peak burns replicas all night. This
example puts the autoscaling control loop (`repro.sim.autoscale`) on
trial: `OptimizerSession.autoscaled_fleet` seeds the replica bounds
from the provisioning model (trough -> min, peak -> max), a
queue-depth controller grows and shrinks the fleet through zero-loss
drains while a diurnal trace replays, and the outcome is scored on the
two axes that matter -- SLO attainment and replica-seconds -- against
both static fleets. The acceptance claims (pinned by
tests/test_sim_autoscale.py):

* the elastic fleet's attainment is at least the trough-provisioned
  fleet's, and
* it spends fewer replica-seconds than the peak-provisioned fleet, and
* zero requests are lost across every scale event.

Run:
    python examples/autoscale_serving.py
"""

from repro import ClusterSpec, OptimizerSession, case_i_hyperscale
from repro.reporting import (
    format_scaling_timeline,
    format_serving_report,
    format_table,
)
from repro.sim import AutoscaleConfig, SLOTarget
from repro.workloads import diurnal_trace

TROUGH_QPS = 300.0   # the night shift the fleet must not over-serve
PEAK_QPS = 2100.0    # the rush hour it must not under-serve
MEAN_QPS = 1200.0    # diurnal mean; amplitude 0.8 swings 240..2160
SLO = SLOTarget(ttft=0.5, tpot=0.005)


def replay_static(session, schedule, replicas, trace):
    """Replay the trace through a fixed-size fleet; return (report,
    replica-seconds)."""
    fleet = session.fleet_engine(schedule, replicas=replicas,
                                 routing="join-idle-queue")
    lens = trace.decode_lens or (None,) * trace.num_requests
    for arrival, decode_len in zip(trace.arrivals, lens):
        fleet.submit(arrival, decode_len=decode_len)
    fleet.drain()
    return fleet.report(trace, slo=SLO), replicas * fleet.now


def main() -> None:
    session = (OptimizerSession(case_i_hyperscale("1B"),
                                ClusterSpec(num_servers=64))
               .with_search(budget_xpus=16))

    # 1. An elastic fleet, bounds seeded by the provisioning model.
    #    Depth thresholds bracket the healthy steady state (a loaded
    #    replica here carries ~40-55 in-flight requests): above 64 per
    #    replica the queue is building, below 16 the load fits in a
    #    smaller fleet.
    autoscaler = session.autoscaled_fleet(
        TROUGH_QPS, PEAK_QPS,
        autoscale=AutoscaleConfig(policy="queue-depth", interval=0.5,
                                  cooldown=2.0, scale_up=64.0,
                                  scale_down=16.0),
        routing="join-idle-queue", slo=SLO)
    print(f"provisioned bounds: {autoscaler.min_replicas} (trough "
          f"{TROUGH_QPS:.0f} QPS) .. {autoscaler.max_replicas} (peak "
          f"{PEAK_QPS:.0f} QPS)")
    schedule = autoscaler.fleet.schedules[0]
    print(f"per-replica schedule: {schedule.describe()}")
    print()

    # 2. One compressed day of traffic: a sinusoidal rate curve from
    #    240 to 2160 QPS inside a 24-second window.
    trace = diurnal_trace(MEAN_QPS, duration=24.0, seed=11,
                          mean_decode_len=64, amplitude=0.8)
    print(f"traffic: {trace.describe()}")
    print()

    # 3. Replay with the control loop in the driver's seat.
    autoscaler.run_trace(trace)
    auto_report = autoscaler.fleet.report(trace, slo=SLO)
    auto_seconds = autoscaler.replica_seconds
    print(format_serving_report(auto_report))
    print()
    print(format_scaling_timeline(autoscaler.timeline(),
                                  replica_seconds=auto_seconds))
    # The zero-loss invariant: every scale event drained, none dropped.
    assert autoscaler.fleet.completed == autoscaler.fleet.offered \
        == trace.num_requests, "requests lost across scale events"
    print()

    # 4. The two static baselines on the identical trace.
    trough_report, trough_seconds = replay_static(
        session, schedule, autoscaler.min_replicas, trace)
    peak_report, peak_seconds = replay_static(
        session, schedule, autoscaler.max_replicas, trace)

    rows = [
        ["autoscaled",
         f"{autoscaler.min_replicas}..{autoscaler.max_replicas}",
         auto_report.slo_attainment["joint"], auto_seconds],
        ["static trough", autoscaler.min_replicas,
         trough_report.slo_attainment["joint"], trough_seconds],
        ["static peak", autoscaler.max_replicas,
         peak_report.slo_attainment["joint"], peak_seconds],
    ]
    print(format_table(
        ("fleet", "replicas", "joint SLO attainment", "replica-seconds"),
        rows, title="one diurnal day, three fleets"))
    print()

    # 5. The acceptance claims.
    auto_attainment = auto_report.slo_attainment["joint"]
    trough_attainment = trough_report.slo_attainment["joint"]
    assert auto_attainment >= trough_attainment, (
        f"autoscaled attainment {auto_attainment:.3f} fell below the "
        f"trough-provisioned fleet's {trough_attainment:.3f}")
    assert auto_seconds < peak_seconds, (
        f"autoscaled fleet spent {auto_seconds:.1f} replica-seconds; "
        f"expected less than the peak-provisioned {peak_seconds:.1f}")
    print(f"-> elastic fleet attains {100 * auto_attainment:.1f}% "
          f"(trough-provisioned: {100 * trough_attainment:.1f}%) "
          f"while spending {auto_seconds:.1f} replica-seconds "
          f"(peak-provisioned: {peak_seconds:.1f}) -- better latency "
          f"than the cheap fleet, cheaper than the safe one")


if __name__ == "__main__":
    main()
