#!/usr/bin/env python3
"""What-if planning: replay one recorded day against a policy grid.

The provisioning-review workflow end to end: record (here: generate) a
diurnal day of traffic, sweep a 3-axis policy grid over it --
replica counts x routing policies x an autoscale controller -- and
read the answer off the Pareto frontier over (chip-seconds, SLO
attainment). The same study from the command line:

    python -m repro whatif --case i --llm 8B --scenario diurnal \\
        --replicas 1,2,3 --routing "none;least-in-flight" \\
        --autoscale "none;policy=queue-depth,min=1,max=3" \\
        --cache .whatif

Cells are cached content-keyed on disk, so re-running after editing
one axis recomputes only the new cells -- the second run below proves
it by replaying the whole grid from cache.

Run:
    python examples/whatif_planning.py
"""

import tempfile

from repro import case_i_hyperscale
from repro.rago.session import OptimizerSession
from repro.rago.whatif import WhatIfGrid
from repro.sim.metrics import SLOTarget
from repro.workloads.traces import diurnal_trace


def describe_cell(cell) -> str:
    fleet = ("autoscaled" if cell.replicas is None
             else f"{cell.replicas} replica(s)")
    routing = cell.routing or "default routing"
    return f"{fleet}, {routing}"


def main() -> None:
    session = OptimizerSession(case_i_hyperscale("8B"))
    best = session.optimize().max_qps_per_chip

    # One compressed diurnal "day": the mean rate sits at 60% of the
    # best schedule's analytical saturation, so the daily peak
    # overloads a single replica and the trough wastes a large fleet
    # -- exactly the regime where the policy choice matters.
    trace = diurnal_trace(rate_qps=0.6 * best.qps, duration=60.0,
                          seed=7)
    slo = SLOTarget(ttft=5 * best.ttft, tpot=2 * best.tpot)
    print(f"traffic : {trace.describe()}")
    print(f"slo     : TTFT <= {slo.ttft * 1e3:.0f} ms, "
          f"TPOT <= {slo.tpot * 1e3:.1f} ms")

    # Three axes: fixed fleets of 1-3 replicas, two routing policies,
    # and a queue-depth autoscale controller as the elastic contender.
    grid = WhatIfGrid(
        schedules=(best.schedule,),
        replicas=(1, 2, 3),
        routing=(None, "least-in-flight"),
        autoscale=(None, "policy=queue-depth,min=1,max=3"),
    )
    print(f"grid    : {grid.num_cells} cells "
          f"(replicas x routing x autoscale)")

    with tempfile.TemporaryDirectory() as cache_dir:
        result = session.whatif(trace, grid, slo=slo, cache=cache_dir)
        print()
        print(result.to_table())

        print()
        print("=== the Pareto frontier (chip-seconds vs attainment) ===")
        for cell in result.frontier():
            print(f"  {describe_cell(cell):34s} "
                  f"{cell.metric('attainment') * 100:5.1f}% attained  "
                  f"{cell.metric('chip_seconds'):8.1f} chip-s")

        # "Chosen provisioning": the cheapest frontier cell that still
        # clears 90% joint attainment; fall back to the best attained.
        viable = [cell for cell in result.frontier()
                  if cell.metric("attainment") >= 0.90]
        chosen = viable[0] if viable else max(
            result.ok_cells, key=lambda c: c.metric("attainment"))
        print()
        print(f"  -> provision: {describe_cell(chosen)} "
              f"({chosen.metric('attainment') * 100:.1f}% attained at "
              f"{chosen.metric('chip_seconds'):.1f} chip-seconds)")

        # The cache makes iteration cheap: the same study again is
        # pure cache hits, bit-identical to the fresh run.
        again = session.whatif(trace, grid, slo=slo, cache=cache_dir)
        assert again == result
        assert again.cache_hits == grid.num_cells
        print(f"  -> re-run: {again.cache_hits}/{grid.num_cells} "
              f"cells from cache, result identical")


if __name__ == "__main__":
    main()
