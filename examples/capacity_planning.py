#!/usr/bin/env python3
"""Capacity planning: size, price and power a RAG deployment.

Combines three extensions built on top of the paper's framework:
provisioning (fewest chips for a target load under SLOs), the cost
model ($/million requests, §9 future work) and the energy model
(joules/request). Walks a product scenario: a hyperscale-QA service
must sustain growing load under a 150 ms TTFT SLO.

Run:
    python examples/capacity_planning.py
"""

from repro import (
    ClusterSpec,
    PowerProfile,
    PriceBook,
    ServiceObjective,
    case_i_hyperscale,
    estimate_cost,
    estimate_energy,
    provision,
)
from repro.pipeline import RAGPerfModel
from repro.rago.hetero import split_generation_search


def plan_for_growth(perf_model: RAGPerfModel) -> None:
    print("=== fleet size vs target load (TTFT <= 150 ms) ===")
    objective = ServiceObjective(max_ttft=0.150)
    print(f"{'target QPS':>11} {'replicas':>9} {'chips':>6} "
          f"{'$/M req':>8} {'J/req':>7}")
    for target in (200, 500, 1000, 1500):
        result = provision(perf_model, target_qps=target,
                           objective=objective)
        cost = estimate_cost(result.perf, PriceBook())
        energy = estimate_energy(result.perf, PowerProfile())
        print(f"{target:>11} {result.replicas:>9} "
              f"{result.budget_xpus:>6} "
              f"{cost.dollars_per_million_requests:>8.2f} "
              f"{energy.joules_per_request:>7.1f}")
    print("  -> the 16-server database floor means the first replica is")
    print("     the expensive one; growth amortizes it")
    print()


def consider_mixed_fleet(cluster: ClusterSpec) -> None:
    print("=== would a mixed-generation fleet be cheaper? ===")
    result = split_generation_search(case_i_hyperscale("8B"), cluster)
    best = result.best
    homog = result.best_homogeneous
    print(f"  best homogeneous : {homog.prefill_xpu:6s} everywhere, "
          f"{homog.qps_per_dollar:.2f} QPS/$")
    print(f"  best split fleet : {best.prefill_xpu} prefill + "
          f"{best.decode_xpu} decode, {best.qps_per_dollar:.2f} QPS/$")
    print(f"  -> {100 * (result.hetero_gain - 1):.1f}% more throughput "
          f"per dollar from matching chip type to stage intensity")


def main() -> None:
    cluster = ClusterSpec(num_servers=32)
    perf_model = RAGPerfModel(case_i_hyperscale("8B"), cluster)
    plan_for_growth(perf_model)
    consider_mixed_fleet(cluster)


if __name__ == "__main__":
    main()
