#!/usr/bin/env python3
"""Multi-hop reasoning agent with iterative retrievals (paper Case III).

An agent answering multi-hop questions re-retrieves during generation:
each retrieval pauses the sequence until the retrieved content has been
prefixed back in. Because retrievals are batched for efficiency, decode
slots idle while the batch fills. This example reproduces the §5.3
analysis and derives a batching recommendation.

Run:
    python examples/iterative_multihop.py
"""

from repro import ClusterSpec, Stage, case_iii_iterative, simulate_iterative_decode
from repro.pipeline import RAGPerfModel


def idleness_heatmap() -> None:
    print("=== decode idleness, zero-cost retrieval (Fig. 10) ===")
    decode_batches = (4, 16, 64, 256)
    print("  iter\\dec " + "".join(f"{b:>8d}" for b in decode_batches))
    for iter_batch in (1, 4, 16, 64, 256):
        cells = []
        for decode_batch in decode_batches:
            if iter_batch > decode_batch:
                cells.append("       -")
                continue
            result = simulate_iterative_decode(
                decode_batch=decode_batch, iterative_batch=iter_batch,
                decode_len=256, retrievals_per_seq=3,
                iteration_latency=0.0, seed=17)
            cells.append(f"{result.normalized_latency:8.2f}")
        print(f"  {iter_batch:8d}" + "".join(cells))
    print("  -> equal batches stall decoding up to ~2.8x (paper: 2.77x)")
    print()


def tpot_with_real_latencies(cluster: ClusterSpec) -> None:
    print("=== TPOT vs iterative batch with modelled latencies "
          "(Fig. 9b) ===")
    pm = RAGPerfModel(case_iii_iterative("70B", retrieval_frequency=4),
                      cluster)
    prefix_xpus, decode_xpus = 16, 16
    for decode_batch in (16, 64, 256):
        step = pm.perf(Stage.DECODE, decode_batch,
                       decode_xpus).latency / 256
        best = None
        for iter_batch in (1, 2, 4, 8, 16, 32, 64):
            if iter_batch > decode_batch:
                break
            retrieval = pm.perf(Stage.RETRIEVAL, iter_batch,
                                cluster.num_servers)
            prefix = pm.perf(Stage.PREFIX, iter_batch, prefix_xpus)
            result = simulate_iterative_decode(
                decode_batch=decode_batch, iterative_batch=iter_batch,
                decode_len=256, retrievals_per_seq=3,
                step_latency=step,
                iteration_latency=retrieval.latency + prefix.latency,
                seed=decode_batch)
            if best is None or result.worst_tpot < best[1]:
                best = (iter_batch, result.worst_tpot)
            print(f"  decode={decode_batch:4d} iter={iter_batch:3d} "
                  f"tpot={result.worst_tpot * 1e3:7.2f} ms")
        print(f"  -> best iterative batch for decode {decode_batch}: "
              f"{best[0]} ({best[1] * 1e3:.2f} ms TPOT)")
    print()
    print("recommendation: with a large decode pool, pick the iterative")
    print("batch that saturates the database; with small pools, keep the")
    print("iterative batch well below the decode batch (paper takeaway).")


def main() -> None:
    cluster = ClusterSpec(num_servers=32)
    idleness_heatmap()
    tpot_with_real_latencies(cluster)


if __name__ == "__main__":
    main()
