#!/usr/bin/env python3
"""A pipeline beyond the paper's four case studies.

RAGSchema is a general abstraction; the builder composes stage
combinations the paper never evaluates. This example declares a
"research assistant" pipeline that chains *everything*: a freshly
encoded long-context document base (Case II's encoder), a query
rewriter and a reranker (Case IV's helpers), and iterative retrieval
during decoding (Case III's loop) -- all around a 70B generator.

It also registers a custom stage kind, ``summarize``, showing how new
stage types plug into the builder without touching library code: the
applier reshapes the sequence profile to model a summarization pass
that compresses retrieved passages before the main prefill.

Run:
    python examples/custom_pipeline.py
"""

from repro import ClusterSpec, OptimizerSession, register_stage_type
from repro.schema import pipeline


def apply_summarize(spec, ratio: float = 0.5) -> None:
    """Model a prompt-compression stage by shrinking the prefix the
    generator must prefill (passages summarized to ``ratio`` length)."""
    sequences = spec.sequences
    passages = sequences.retrieved_passages * sequences.passage_len
    question = sequences.question_len
    compressed = question + max(int(passages * ratio), 1)
    spec.sequences = sequences.with_lengths(
        prefix_len=max(compressed, question))


register_stage_type("summarize", apply_summarize, replace_existing=True)


def build_research_assistant():
    """Rewriter + fresh 200K-token context + rerank + iterative 70B."""
    return (pipeline("research-assistant-70b")
            .sequences(context_len=200_000)
            .encode("120M")                    # embed the uploaded corpus
            .rewrite("8B")                     # clean up the user query
            .retrieve_from_context()           # see below: derived database
            .rerank("120M", candidates=32)     # score 32 nearest chunks
            .summarize(ratio=0.5)              # custom registered stage
            .generate("70B", iterative=2)      # retrieve again mid-decode
            .build())


def retrieve_from_context():
    """Derive the brute-force database from the declared context length
    (the Case II construction, reusable for any context size)."""
    from repro.retrieval.scann_model import DatabaseConfig
    from repro.schema.builder import register_stage_type

    def apply(spec) -> None:
        num_vectors = max(spec.sequences.num_chunks, 1)
        database = DatabaseConfig(
            num_vectors=float(num_vectors),
            dim=768,
            bytes_per_vector=768 * 2.0,
            scan_fraction=1.0,
            tree_fanout=max(num_vectors, 2),
            tree_levels=1,
        )
        spec.declare("retrieve")
        spec.database = database
        spec.retrieval_frequency = max(spec.retrieval_frequency, 1)
        spec.brute_force_retrieval = True

    register_stage_type("retrieve_from_context", apply,
                        replace_existing=True)


retrieve_from_context()


def main() -> None:
    schema = build_research_assistant()
    cluster = ClusterSpec(num_servers=16)
    print(f"workload : {schema.describe()}")
    print(f"stages   : encode -> rewrite -> retrieve -> rerank -> "
          f"prefill -> decode (x{schema.retrieval_frequency} retrievals)")
    print(f"cluster  : {cluster.num_servers} servers x "
          f"{cluster.xpus_per_server} {cluster.xpu.name}")
    print()

    session = (OptimizerSession(schema, cluster)
               .with_constraint(max_ttft=2.0))
    result = session.optimize()
    print(f"searched {result.num_plans} plans; frontier:")
    for perf in result.frontier:
        print(f"  ttft={perf.ttft * 1e3:8.1f} ms   "
              f"qps/chip={perf.qps_per_chip:7.3f}   "
              f"xpus={perf.total_xpus:3d}")
    print()
    best = session.best()
    print("best schedule under TTFT <= 2 s:")
    print(f"  {best.schedule.describe()}")
    print(f"  -> {best.qps_per_chip:.3f} QPS/chip at "
          f"{best.ttft * 1e3:.1f} ms TTFT")


if __name__ == "__main__":
    main()
