#!/usr/bin/env python3
"""Serve live traffic, then prove the session replays exactly.

``repro replay`` answers "what would this schedule do under that
trace"; ``repro serve`` answers it for traffic that does not exist yet.
This example runs both halves in one process:

1. open an :class:`~repro.rago.session.OptimizerSession`, search, and
   put the knee schedule's :class:`~repro.sim.ServingEngine` behind a
   :class:`~repro.serve.LiveServer` on a loopback port;
2. fire a bursty client at it over the JSON-lines protocol (three
   volleys separated by quiet gaps), streaming per-request TTFT/TPOT
   completions back as the DES emits them;
3. shut down: the server records the observed arrivals as a replayable
   :class:`~repro.workloads.traces.RequestTrace` and emits a final
   :class:`~repro.sim.ServingReport`;
4. replay that recorded trace offline through the same schedule and
   diff the two reports -- they match bit for bit, which is the
   property that makes a live session a reproducible artifact.

The wall clock is fast-forwarded (``time_scale=200``): one real second
is 200 simulated seconds, so the whole study takes well under a minute.

Run:
    python examples/live_serving.py
"""

import asyncio
import json

from repro import ClusterSpec, OptimizerSession, case_i_hyperscale
from repro.reporting import format_live_summary, format_serving_report
from repro.serve import LiveServer, ServeConfig

BURSTS = 3
BURST_SIZE = 16
GAP_SECONDS = 0.05  # wall seconds between volleys (x200 simulated)


async def bursty_client(host: str, port: int) -> int:
    """Fire volleys of requests and count streamed completions."""
    reader, writer = await asyncio.open_connection(host, port)
    completions = 0
    for burst in range(BURSTS):
        for index in range(BURST_SIZE):
            writer.write(json.dumps(
                {"op": "submit", "id": f"b{burst}-r{index}",
                 "decode_len": 128}).encode() + b"\n")
        await writer.drain()
        await asyncio.sleep(GAP_SECONDS)
        # Drain whatever has completed while we were quiet.
        try:
            while True:
                line = await asyncio.wait_for(reader.readline(),
                                              timeout=0.01)
                if not line:
                    break
                message = json.loads(line)
                if message["op"] == "completion":
                    completions += 1
                    if completions == 1:
                        print(f"first live completion: "
                              f"ttft={message['ttft'] * 1e3:.1f} ms "
                              f"tpot={message['tpot'] * 1e3:.2f} ms "
                              f"slo={message['slo']}")
        except asyncio.TimeoutError:
            pass
    writer.close()
    return completions


async def main() -> None:
    session = OptimizerSession(case_i_hyperscale("8B"),
                               ClusterSpec(num_servers=16))
    engine = session.serving_engine()  # knee of the searched frontier
    print("serving the knee schedule of the searched frontier:")
    print(f"  {engine.schedule.describe()}")

    config = ServeConfig(port=0, time_scale=200.0, tick=0.005,
                         slo_ttft=1.0, slo_tpot=0.01)
    server = LiveServer(engine, config)
    host, port = await server.start()
    print(f"live on {host}:{port} "
          f"(x{config.time_scale:g} fast-forward)\n")

    streamed = await bursty_client(host, port)
    live_report = await server.shutdown()
    print(f"client streamed {streamed} completions before shutdown; "
          f"the rest flushed at drain")
    print()
    print(format_live_summary(server.snapshot()))
    print()
    print("=== what the live server emitted " + "=" * 27)
    print(format_serving_report(live_report))

    # The recorded trace is a first-class artifact: replay it offline
    # through the same schedule and the report reproduces exactly.
    offline_report = session.evaluate_trace(engine.schedule, server.trace,
                                            slo=config.slo)
    print()
    print("=== offline replay of the recorded trace " + "=" * 19)
    print(format_serving_report(offline_report))
    print()
    match = offline_report == live_report
    print(f"live report == offline replay of its recorded trace: {match}")
    assert match, "live/replay parity violated"


if __name__ == "__main__":
    asyncio.run(main())
