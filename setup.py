"""Setup shim for environments whose pip/setuptools predate PEP 660
editable installs (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
